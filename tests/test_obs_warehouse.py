"""Tests for the cross-run telemetry warehouse and the windowed sentinel."""

import sqlite3

import pytest

from repro.obs.regress import compare_against_window
from repro.obs.warehouse import WAREHOUSE_SCHEMA, Warehouse


def _summary(makespan=1.0, tflops=10.0, *, policy="panel-first", run_id=None,
             n=8192, nb=512, config="FP64/FP16"):
    return {
        "schema": "repro.obs.run_summary/1",
        "manifest": {
            "run_id": run_id,
            "command": "simulate",
            "policy": policy,
            "cache_schema": 4,
            "git_revision": "deadbeef",
            "config": {"n": n, "nb": nb, "config": config, "gpu": "V100"},
        },
        "stats": {
            "makespan_seconds": makespan,
            "tflops": tflops,
            "h2d_bytes": 1000,
            "nic_bytes": 0,
        },
        "metrics": {},
    }


def _bench():
    return {
        "schema": "repro.bench/1",
        "cache_schema": 4,
        "n_runs": 2,
        "n_failed": 0,
        "aggregates": {"best_tflops": 12.0, "total_sim_makespan_seconds": 0.5},
        "runs": [
            {
                "key": "k1",
                "cached": True,
                "failed": False,
                "attempts": 1,
                "spec": {"config": "FP64", "strategy": "auto", "n": 4096,
                         "nb": 512, "gpu": "V100"},
                "metrics": {"makespan_seconds": 0.2, "tflops": 11.0},
            },
            {
                "key": "k2",
                "cached": False,
                "failed": True,
                "attempts": 2,
                "spec": {"config": "FP32", "strategy": "auto", "n": 4096,
                         "nb": 512, "gpu": "V100"},
                "metrics": {},
            },
        ],
    }


def _profile_doc(rate=50_000.0):
    return {
        "schema": "repro.obs.profile/1",
        "interval_seconds": 0.005,
        "wall_seconds": 1.0,
        "n_samples": 200,
        "overhead_seconds": 0.01,
        "overhead_fraction": 0.01,
        "tasks_per_second": rate,
        "top_frames": [],
        "hot_regions": [{"name": "sim.ready_heap_loop", "calls": 1,
                         "seconds": 0.6, "fraction": 0.6}],
        "manifest": {"run_id": None, "command": "profile",
                     "policy": "critical-path",
                     "config": {"n": 8192, "nb": 512, "config": "FP64/FP16",
                                "gpu": "V100"}},
    }


@pytest.fixture
def wh(tmp_path):
    with Warehouse(tmp_path / "wh.db") as wh:
        yield wh


class TestIngest:
    def test_run_summary_columns(self, wh):
        res = wh.ingest(_summary(run_id="abc123"))
        assert res.kind == "run_summary"
        assert res.run_key == "abc123"
        assert res.n_metrics > 0 and res.n_points == 0
        (row,) = wh.runs()
        assert row.policy == "panel-first"
        assert (row.n, row.nb, row.nt) == (8192, 512, 16)
        assert row.config == "FP64/FP16"
        assert row.gpu == "V100"
        assert row.cache_schema == 4
        assert row.git_revision == "deadbeef"

    def test_content_key_is_stable_without_run_id(self, wh):
        doc = _summary()
        r1, r2 = wh.ingest(doc), wh.ingest(doc)
        assert r1.run_key == r2.run_key
        assert r1.seq != r2.seq

    def test_bench_points(self, wh):
        res = wh.ingest(_bench())
        assert res.kind == "bench"
        assert res.n_points == 2
        (row,) = wh.runs()
        assert row.cache_schema == 4  # top-level fallback for BENCH docs
        points = {p["key"]: p for p in wh.bench_points(res.seq)}
        assert points["k1"]["cached"] and not points["k1"]["failed"]
        assert points["k2"]["failed"] and points["k2"]["attempts"] == 2
        assert points["k1"]["label"] == "FP64/auto/4096/512/V100"

    def test_profile_scope(self, wh):
        res = wh.ingest(_profile_doc())
        assert res.kind == "profile"
        scopes = wh.metric_scopes(res.seq)
        assert scopes["profile"]["tasks_per_second"] == 50_000.0
        assert scopes["profile"]["region_seconds[sim.ready_heap_loop]"] == 0.6
        (row,) = wh.runs()
        assert row.policy == "critical-path"

    def test_bare_stats_doc(self, wh):
        res = wh.ingest({"makespan_seconds": 2.0, "tflops": 5.0})
        assert res.kind == "stats"

    def test_unknown_doc_rejected(self, wh):
        with pytest.raises(ValueError, match="cannot ingest"):
            wh.ingest({"schema": "something/else"})

    def test_ingest_file(self, wh, tmp_path):
        import json

        path = tmp_path / "run.json"
        path.write_text(json.dumps(_summary()), encoding="utf-8")
        res = wh.ingest_file(path)
        assert res.kind == "run_summary"
        (row,) = wh.runs()
        assert row.source == str(path)


class TestQueries:
    def test_filters(self, wh):
        wh.ingest(_summary(policy="panel-first", n=8192, nb=512))
        wh.ingest(_summary(policy="critical-path", n=8192, nb=512))
        wh.ingest(_summary(policy="panel-first", n=16384, nb=512,
                           config="FP64"))
        assert len(wh.runs()) == 3
        assert len(wh.runs(policy="panel-first")) == 2
        assert len(wh.runs(nt=32)) == 1
        assert len(wh.runs(config="FP64")) == 1
        assert len(wh.runs(kind="run_summary")) == 3
        assert len(wh.runs(policy="panel-first", nt=16)) == 1

    def test_limit_keeps_newest(self, wh):
        for makespan in (1.0, 2.0, 3.0):
            wh.ingest(_summary(makespan))
        rows = wh.runs(limit=2)
        assert [r.seq for r in rows] == [2, 3]

    def test_window_scopes_oldest_first(self, wh):
        for makespan in (1.0, 2.0, 3.0, 4.0):
            wh.ingest(_summary(makespan))
        window = wh.window_scopes(3)
        assert [s["run"]["makespan_seconds"] for s in window] == [2.0, 3.0, 4.0]
        with pytest.raises(ValueError):
            wh.window_scopes(0)

    def test_metric_history(self, wh):
        for makespan in (1.0, 1.5):
            wh.ingest(_summary(makespan, run_id=f"r{makespan}"))
        series = wh.metric_history("makespan_seconds")
        assert [(seq, value) for seq, _key, value in series] == [(1, 1.0), (2, 1.5)]
        assert wh.metric_history("makespan_seconds", policy="nope") == []

    def test_document_roundtrip(self, wh):
        doc = _summary(run_id="roundtrip")
        res = wh.ingest(doc)
        assert wh.document(res.seq)["manifest"]["run_id"] == "roundtrip"
        with pytest.raises(KeyError):
            wh.document(999)

    def test_counts(self, wh):
        wh.ingest(_summary())
        wh.ingest(_bench())
        counts = wh.counts()
        assert counts["runs"] == 2
        assert counts["bench_points"] == 2
        assert counts["metrics"] > 0


class TestRendering:
    def test_history_table(self, wh):
        wh.ingest(_summary(run_id="tbl1"))
        wh.ingest(_profile_doc())
        text = wh.history_table()
        assert "tbl1" in text
        assert "2 runs" in text
        assert "panel-first" in text

    def test_history_table_labels_throughput_metric(self, wh):
        # the throughput column mixes metrics per run kind; each row
        # must say which one it is showing (regression: tasks/sec rows
        # used to print under a column headed "tflops/rate")
        wh.ingest(_summary(run_id="tfl"))
        wh.ingest(_profile_doc())
        text = wh.history_table()
        assert "tflops/rate" not in text
        assert " tflops" in text
        assert "tasks/s" in text

    def test_history_table_empty(self, wh):
        assert "(no matching runs)" in wh.history_table()

    def test_history_json(self, wh):
        wh.ingest(_summary(run_id="js1"))
        doc = wh.history_json()
        assert doc["schema"] == WAREHOUSE_SCHEMA
        assert doc["counts"]["runs"] == 1
        (run,) = doc["runs"]
        assert run["run_key"] == "js1"
        assert run["metrics"]["run"]["makespan_seconds"] == 1.0


class TestSchemaGuard:
    def test_reopen_same_schema(self, tmp_path):
        path = tmp_path / "wh.db"
        Warehouse(path).close()
        with Warehouse(path) as wh:
            assert wh.counts()["runs"] == 0

    def test_reopen_mismatched_schema(self, tmp_path):
        path = tmp_path / "wh.db"
        Warehouse(path).close()
        db = sqlite3.connect(str(path))
        with db:
            db.execute("UPDATE meta SET value='repro.obs.warehouse/999'"
                       " WHERE key='schema'")
        db.close()
        with pytest.raises(ValueError, match="schema"):
            Warehouse(path)


class TestWindowedSentinel:
    """Acceptance: the trend sentinel over warehouse history."""

    def test_flat_history_passes(self, wh):
        for _ in range(5):
            wh.ingest(_summary(1.0, 10.0))
        report = compare_against_window(wh.window_scopes(5), _summary(1.0, 10.0))
        assert report.verdict == "ok"
        assert report.regressions == []
        assert report.drifts == []

    def test_twenty_percent_drift_is_flagged(self, wh):
        # 20 % synthetic makespan drift across a 5-run history
        for makespan in (1.00, 1.04, 1.08, 1.12, 1.16):
            wh.ingest(_summary(makespan))
        report = compare_against_window(wh.window_scopes(5), _summary(1.20))
        assert report.verdict == "regressed"
        drifting = {(t.scope, t.metric) for t in report.drifts}
        assert ("run", "makespan_seconds") in drifting
        (trend,) = [t for t in report.trends
                    if t.metric == "makespan_seconds" and t.drifting]
        assert trend.rel_drift == pytest.approx(0.20, abs=0.01)

    def test_slow_drift_missed_by_pairwise_gate(self, wh):
        # each 1.5 % step is under the 2 % pairwise threshold, but the
        # compounded trend over the window is not
        makespans = [1.0 * (1.015 ** k) for k in range(5)]
        for makespan in makespans:
            wh.ingest(_summary(makespan))
        candidate = _summary(makespans[-1] * 1.015)
        report = compare_against_window(wh.window_scopes(5), candidate)
        assert any(t.metric == "makespan_seconds" and t.drifting
                   for t in report.trends)

    def test_improving_trend_not_flagged(self, wh):
        for tflops in (10.0, 10.5, 11.0, 11.5, 12.0):
            wh.ingest(_summary(1.0, tflops))
        report = compare_against_window(wh.window_scopes(5), _summary(1.0, 12.5))
        assert not any(t.metric == "tflops" and t.drifting for t in report.trends)

    def test_empty_history_raises(self, wh):
        with pytest.raises(ValueError):
            compare_against_window(wh.window_scopes(5), _summary())

    def test_report_document_and_table(self, wh):
        for makespan in (1.0, 1.1, 1.2, 1.3, 1.4):
            wh.ingest(_summary(makespan))
        report = compare_against_window(wh.window_scopes(5), _summary(1.5))
        doc = report.to_dict()
        assert doc["schema"] == "repro.obs.regress.window/1"
        assert doc["verdict"] == "regressed"
        assert doc["window"] == 5
        text = report.table()
        assert "DRIFTING" in text
        assert "makespan_seconds" in text
