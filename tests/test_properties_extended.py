"""Second round of hypothesis property tests across subsystems."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    build_comm_precision_map,
    build_precision_map,
    two_precision_map,
    uniform_map,
)
from repro.core.precision_map import KernelPrecisionMap
from repro.geostats.covariance import Matern, SquaredExponential
from repro.perfmodel.analytic import analytic_cholesky
from repro.perfmodel.gpus import SUMMIT_NODE
from repro.precision import ADAPTIVE_FORMATS, Precision
from repro.runtime.platform import Platform
from repro.tlr.compression import LowRankTile, compress, recompress


@given(st.integers(4, 64), st.integers(0, 10**6))
@settings(max_examples=25, deadline=None)
def test_analytic_monotone_in_precision(nt, seed):
    """For any NT and node count, lower precision is never slower."""
    rng = np.random.default_rng(seed)
    nodes = int(rng.integers(1, 9))
    plat = Platform(node=SUMMIT_NODE, n_nodes=nodes)
    nb = 2048
    t64 = analytic_cholesky(nt * nb, nb, uniform_map(nt, Precision.FP64), plat).seconds
    t32 = analytic_cholesky(nt * nb, nb, uniform_map(nt, Precision.FP32), plat).seconds
    t16 = analytic_cholesky(nt * nb, nb, two_precision_map(nt, Precision.FP16), plat).seconds
    assert t16 <= t32 * 1.0001 <= t64 * 1.0002


@given(st.integers(2, 20), st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_random_map_comm_idempotent_under_composition(nt, seed):
    """Re-deriving the comm map from itself-as-kernel-map only lowers it.

    The comm precision is a lower bound on what successors need; feeding
    it back as a (fictitious) kernel map cannot raise any entry above the
    original storage precision.
    """
    rng = np.random.default_rng(seed)
    codes = rng.choice([int(p) for p in ADAPTIVE_FORMATS], size=(nt, nt)).astype(np.int8)
    codes = np.maximum(codes, codes.T)
    np.fill_diagonal(codes, int(Precision.FP64))
    kmap = KernelPrecisionMap(nt=nt, codes=codes)
    cmap = build_comm_precision_map(kmap)
    for i in range(nt):
        for j in range(i + 1):
            assert cmap.comm(i, j) <= cmap.storage(i, j)


@given(
    st.sampled_from(["sqexp", "matern"]),
    st.floats(0.02, 0.5),
    st.integers(0, 10**6),
)
@settings(max_examples=20, deadline=None)
def test_covariance_tile_norms_decay_gives_monotone_budget(kind, beta, seed):
    """Precision maps from real covariances: tightening u_req never
    lowers any tile's precision (monotone refinement)."""
    from repro.geostats.generator import build_tiled_covariance
    from repro.geostats.locations import generate_locations
    from repro.tiles.norms import tile_norms

    rng = np.random.default_rng(seed)
    locs = generate_locations(96, 2, seed=int(rng.integers(0, 1000)))
    model = SquaredExponential(dim=2) if kind == "sqexp" else Matern(dim=2)
    theta = (1.0, beta) if kind == "sqexp" else (1.0, beta, 0.5)
    cov = build_tiled_covariance(locs, model, theta, 16)
    norms = tile_norms(cov)
    prev = None
    for acc in (1e-2, 1e-5, 1e-8, 1e-11):
        kmap = build_precision_map(norms, acc)
        if prev is not None:
            assert np.all(kmap.codes >= prev.codes)
        prev = kmap


@given(st.integers(2, 20), st.integers(2, 20), st.integers(1, 6),
       st.integers(0, 10**6))
@settings(max_examples=40, deadline=None)
def test_tlr_recompress_never_increases_error_bound(m, n, r, seed):
    """Recompression at tol keeps ‖ΔA‖₂ ≤ tol·‖A‖₂ and never grows rank."""
    rng = np.random.default_rng(seed)
    lr = LowRankTile(rng.standard_normal((m, r)), rng.standard_normal((n, r)))
    dense = lr.to_dense()
    for tol in (1e-12, 1e-3):
        out = recompress(lr, tol)
        assert out.rank <= lr.rank
        err = np.linalg.norm(out.to_dense() - dense, 2)
        ref = np.linalg.norm(dense, 2)
        assert err <= max(tol * ref * 1.01, 1e-12)


@given(st.integers(3, 24), st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_compress_roundtrip_exact_for_lowrank_input(n, seed):
    rng = np.random.default_rng(seed)
    r = int(rng.integers(1, max(2, n // 2)))
    u = rng.standard_normal((n, r))
    v = rng.standard_normal((n, r))
    dense = u @ v.T
    lr = compress(dense, 1e-12)
    assert lr.rank <= r
    assert np.linalg.norm(lr.to_dense() - dense) <= 1e-8 * (1 + np.linalg.norm(dense))


@given(st.integers(1, 500))
@settings(max_examples=50)
def test_platform_rank_mapping_bijective(nprocs):
    plat = Platform(node=SUMMIT_NODE, n_nodes=max(1, nprocs // 6 + 1))
    seen = set()
    for rank in range(plat.n_ranks):
        key = (plat.node_of(rank), plat.local_gpu(rank))
        assert key not in seen
        seen.add(key)
        assert 0 <= key[1] < plat.node.gpus_per_node
