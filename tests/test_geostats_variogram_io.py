"""Unit tests for variogram estimation and dataset persistence."""

import numpy as np
import pytest

from repro.geostats import (
    Dataset,
    SyntheticField,
    empirical_variogram,
    fit_variogram,
    load_dataset_csv,
    load_dataset_npz,
    save_dataset_csv,
    save_dataset_npz,
    theoretical_variogram,
)
from repro.geostats.covariance import Matern, SquaredExponential


@pytest.fixture(scope="module")
def matern_ds():
    return SyntheticField.matern_2d(n=400, range_=0.1, smoothness=0.5, seed=6).sample()


class TestEmpiricalVariogram:
    def test_shape_and_positivity(self, matern_ds):
        emp = empirical_variogram(matern_ds, n_bins=12)
        assert emp.n_bins <= 12
        assert np.all(emp.semivariance >= 0.0)
        assert np.all(emp.counts > 0)
        assert np.all(np.diff(emp.bin_centers) > 0)

    def test_increases_with_distance(self, matern_ds):
        """Semivariance rises toward the sill for a correlated field."""
        emp = empirical_variogram(matern_ds, n_bins=10)
        assert emp.semivariance[0] < emp.semivariance[-1]

    def test_short_lag_near_zero_for_smooth_field(self):
        ds = SyntheticField.matern_2d(n=300, range_=0.3, smoothness=1.0, seed=1).sample()
        emp = empirical_variogram(ds, n_bins=10)
        assert emp.semivariance[0] < 0.25 * np.var(ds.z)

    def test_max_distance_respected(self, matern_ds):
        emp = empirical_variogram(matern_ds, n_bins=8, max_distance=0.3)
        assert emp.bin_centers[-1] <= 0.3

    def test_invalid_bins(self, matern_ds):
        with pytest.raises(ValueError):
            empirical_variogram(matern_ds, n_bins=0)


class TestTheoreticalVariogram:
    def test_zero_at_origin(self):
        g = theoretical_variogram(Matern(dim=2), (1.0, 0.1, 0.5), np.array([0.0]))
        assert g[0] == 0.0

    def test_sill_at_infinity(self):
        g = theoretical_variogram(SquaredExponential(dim=2), (1.5, 0.1), np.array([100.0]))
        assert g[0] == pytest.approx(1.5)

    def test_nugget_discontinuity(self):
        g = theoretical_variogram(
            Matern(dim=2), (1.0, 0.1, 0.5), np.array([0.0, 1e-6]), nugget=0.2
        )
        assert g[0] == 0.0
        assert g[1] > 0.2

    def test_monotone(self):
        h = np.linspace(0, 1, 30)
        g = theoretical_variogram(Matern(dim=2), (1.0, 0.2, 1.0), h)
        assert np.all(np.diff(g) >= -1e-12)


class TestFitVariogram:
    def test_recovers_sill_and_range_scale(self, matern_ds):
        theta, emp = fit_variogram(matern_ds)
        assert emp.n_bins > 3
        # sill (variance) within a factor of ~2.5, range within an order
        assert 0.3 < theta[0] < 2.0
        assert 0.01 < theta[1] < 0.8

    def test_consistent_with_theoretical(self, matern_ds):
        theta, emp = fit_variogram(matern_ds)
        fitted = theoretical_variogram(matern_ds.model, theta, emp.bin_centers)
        rel = np.linalg.norm(fitted - emp.semivariance) / np.linalg.norm(emp.semivariance)
        assert rel < 0.5


class TestIO:
    def test_csv_roundtrip(self, matern_ds, tmp_path):
        path = str(tmp_path / "d.csv")
        save_dataset_csv(matern_ds, path)
        back = load_dataset_csv(path, "2d-matern")
        assert np.allclose(back.locations, matern_ds.locations)
        assert np.allclose(back.z, matern_ds.z)
        assert back.model.name == "2D-Matern"

    def test_csv_3d(self, tmp_path):
        ds = SyntheticField.sqexp_3d(64, nugget=0.01, seed=2).sample()
        path = str(tmp_path / "d3.csv")
        save_dataset_csv(ds, path)
        back = load_dataset_csv(path, "3d-sqexp", nugget=0.01)
        assert back.locations.shape == (64, 3)
        assert back.nugget == 0.01

    def test_csv_dim_mismatch(self, matern_ds, tmp_path):
        path = str(tmp_path / "d.csv")
        save_dataset_csv(matern_ds, path)
        with pytest.raises(ValueError, match="columns"):
            load_dataset_csv(path, "3d-sqexp")

    def test_csv_empty(self, tmp_path):
        path = str(tmp_path / "empty.csv")
        open(path, "w").write("x,y,value\n")
        with pytest.raises(ValueError, match="no data"):
            load_dataset_csv(path, "2d-matern")

    def test_npz_roundtrip(self, matern_ds, tmp_path):
        path = str(tmp_path / "d.npz")
        save_dataset_npz(matern_ds, path)
        back = load_dataset_npz(path)
        assert np.array_equal(back.locations, matern_ds.locations)
        assert np.array_equal(back.z, matern_ds.z)
        assert back.theta_true == matern_ds.theta_true
        assert back.nugget == matern_ds.nugget
        assert back.model.name == matern_ds.model.name

    def test_npz_without_theta(self, tmp_path):
        ds = Dataset(np.random.default_rng(0).random((10, 2)), np.zeros(10),
                     Matern(dim=2))
        path = str(tmp_path / "x.npz")
        save_dataset_npz(ds, path)
        assert load_dataset_npz(path).theta_true is None
