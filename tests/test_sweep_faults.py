"""Resilience tests for the sweep engine: faults, retries, cache quarantine."""

import json

from repro.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.obs import get_registry
from repro.sweep import RunSpec, run_sweep

TINY = dict(n=1024, nb=256)  # nt=4 — fast enough for unit tests


def _specs():
    return [
        RunSpec(**TINY, config="FP64"),
        RunSpec(**TINY, config="FP32"),
        RunSpec(**TINY, config="FP64/FP16"),
    ]


def _crash_plan(spec: RunSpec, times=None) -> FaultPlan:
    """A plan that crashes exactly the given spec's point."""
    return FaultPlan((FaultSpec("crash_point", point=spec.cache_key(), times=times),))


class TestSweepFaults:
    def test_crashed_point_does_not_sink_campaign(self, tmp_path):
        """Acceptance: a crashed point is marked failed, the rest complete."""
        specs = _specs()
        result = run_sweep(specs, cache_dir=tmp_path,
                           fault_plan=_crash_plan(specs[1], times=None))
        assert result.n_runs == 3
        assert result.n_failed == 1
        assert [r.failed for r in result.runs] == [False, True, False]
        ok = [r for r in result.runs if not r.failed]
        assert all(r.result["makespan_seconds"] > 0 for r in ok)
        assert "FaultInjectedError" in result.runs[1].result["error"]

    def test_transient_fault_recovered_by_retry(self, tmp_path):
        """One injected blip + retry policy: the point succeeds on attempt 2."""
        reg = get_registry()
        before = reg.counter("retry.attempts").value(op="sweep.point")
        specs = _specs()[:2]
        result = run_sweep(
            specs, cache_dir=tmp_path,
            retry_policy=RetryPolicy(max_retries=2, base_delay=0.0),
            fault_plan=_crash_plan(specs[0], times=1),
        )
        assert result.n_failed == 0
        assert result.runs[0].attempts == 2
        assert result.runs[1].attempts == 1
        assert result.total_retries == 1
        # acceptance: retried points land in retry.attempts telemetry
        assert reg.counter("retry.attempts").value(op="sweep.point") == before + 1

    def test_permanent_fault_exhausts_retries(self, tmp_path):
        reg = get_registry()
        gave_up_before = reg.counter("retry.gave_up").value(op="sweep.point")
        failed_before = reg.counter("sweep.failed").total()
        specs = _specs()[:1]
        result = run_sweep(
            specs, cache_dir=tmp_path,
            retry_policy=RetryPolicy(max_retries=2, base_delay=0.0),
            fault_plan=_crash_plan(specs[0], times=None),
        )
        assert result.n_failed == 1
        assert result.runs[0].attempts == 3  # 1 try + 2 retries
        assert result.total_retries == 2
        assert reg.counter("retry.gave_up").value(op="sweep.point") == gave_up_before + 1
        assert reg.counter("sweep.failed").total() == failed_before + 1

    def test_failed_point_not_cached_and_retried_next_campaign(self, tmp_path):
        specs = _specs()[:1]
        plan = _crash_plan(specs[0], times=1)  # fires once per campaign's injector
        first = run_sweep(specs, cache_dir=tmp_path, fault_plan=plan)
        assert first.n_failed == 1
        assert not list(tmp_path.glob("*.json"))  # nothing cached
        second = run_sweep(specs, cache_dir=tmp_path, fault_plan=plan)
        # a fresh campaign re-arms the plan, the blip fires again: still
        # failed — but with a retry budget the same plan is absorbed
        assert second.n_failed == 1
        third = run_sweep(specs, cache_dir=tmp_path, fault_plan=plan,
                          retry_policy=RetryPolicy(max_retries=1, base_delay=0.0))
        assert third.n_failed == 0
        assert list(tmp_path.glob("*.json"))  # success is cached now

    def test_failed_row_and_bench_json(self, tmp_path):
        specs = _specs()[:2]
        result = run_sweep(specs, cache_dir=tmp_path,
                           fault_plan=_crash_plan(specs[1], times=None))
        table = result.table()
        assert "1 failed" in table
        assert "yes" in table
        doc = result.to_bench_json()
        assert doc["n_failed"] == 1
        assert doc["runs"][1]["failed"] is True
        assert doc["aggregates"]["best_tflops"] > 0  # from the surviving point
        json.dumps(doc)  # still serializable with failure payloads inside

    def test_parallel_workers_fault_isolation(self, tmp_path):
        """A crash inside a pool worker must not break the pool."""
        specs = _specs()
        result = run_sweep(specs, workers=2, cache_dir=tmp_path,
                           fault_plan=_crash_plan(specs[0], times=None))
        assert result.n_failed == 1
        assert [r.failed for r in result.runs] == [True, False, False]

    def test_faults_injected_counter(self, tmp_path):
        reg = get_registry()
        before = reg.counter("faults.injected").value(kind="crash_point")
        specs = _specs()[:1]
        run_sweep(specs, cache_dir=tmp_path,
                  retry_policy=RetryPolicy(max_retries=1, base_delay=0.0),
                  fault_plan=_crash_plan(specs[0], times=None))
        # fired on the first try and on the retry
        assert reg.counter("faults.injected").value(kind="crash_point") == before + 2


class TestCacheQuarantine:
    def _prime(self, tmp_path):
        spec = RunSpec(**TINY, config="FP64")
        run_sweep([spec], cache_dir=tmp_path)
        (path,) = tmp_path.glob("*.json")
        return spec, path

    def test_truncated_json_is_miss_and_quarantined(self, tmp_path):
        spec, path = self._prime(tmp_path)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        reg = get_registry()
        before = reg.counter("sweep.cache_corrupt").total()
        result = run_sweep([spec], cache_dir=tmp_path)
        assert result.n_cache_hits == 0
        assert result.n_failed == 0  # re-executed, not aborted
        assert reg.counter("sweep.cache_corrupt").total() == before + 1
        assert path.with_suffix(".json.corrupt").exists()
        assert path.exists()  # fresh result stored back

    def test_json_array_regression(self, tmp_path):
        """A JSON array used to raise AttributeError out of the campaign."""
        spec, path = self._prime(tmp_path)
        path.write_text(json.dumps([1, 2, 3]))
        result = run_sweep([spec], cache_dir=tmp_path)
        assert result.n_failed == 0
        assert result.n_cache_misses == 1
        assert path.with_suffix(".json.corrupt").exists()

    def test_binary_garbage_is_miss(self, tmp_path):
        """Non-UTF-8 bytes used to raise UnicodeDecodeError."""
        spec, path = self._prime(tmp_path)
        path.write_bytes(b"\xff\xfe\x00garbage")
        result = run_sweep([spec], cache_dir=tmp_path)
        assert result.n_failed == 0
        assert path.with_suffix(".json.corrupt").exists()

    def test_non_dict_result_quarantined(self, tmp_path):
        spec, path = self._prime(tmp_path)
        doc = json.loads(path.read_text())
        doc["result"] = "not a dict"
        path.write_text(json.dumps(doc))
        result = run_sweep([spec], cache_dir=tmp_path)
        assert result.n_cache_hits == 0
        assert path.with_suffix(".json.corrupt").exists()

    def test_schema_mismatch_is_plain_miss_no_quarantine(self, tmp_path):
        spec, path = self._prime(tmp_path)
        doc = json.loads(path.read_text())
        doc["schema"] = "repro.sweep/0-ancient"
        path.write_text(json.dumps(doc))
        result = run_sweep([spec], cache_dir=tmp_path)
        assert result.n_cache_hits == 0
        assert not path.with_suffix(".json.corrupt").exists()  # well-formed: overwrite
        # and the point re-cached under the current schema
        assert json.loads(path.read_text())["schema"] != "repro.sweep/0-ancient"

    def test_quarantined_entry_recovers_on_rerun(self, tmp_path):
        spec, path = self._prime(tmp_path)
        path.write_text("{truncated")
        run_sweep([spec], cache_dir=tmp_path)
        result = run_sweep([spec], cache_dir=tmp_path)  # cache is healthy again
        assert result.n_cache_hits == 1
