"""Unit and property tests for the TLR extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.precision_map import build_precision_map
from repro.precision import Precision
from repro.tiles.norms import tile_norms
from repro.tiles.tilematrix import TiledSymmetricMatrix
from repro.tlr import (
    LowRankTile,
    TLRSymmetricMatrix,
    add_lowrank,
    compress,
    recompress,
    tlr_cholesky,
)


@pytest.fixture(scope="module")
def matern_mat():
    from repro.geostats.covariance import Matern
    from repro.geostats.generator import build_tiled_covariance
    from repro.geostats.locations import generate_locations

    locs = generate_locations(300, 2, seed=2)
    cov = build_tiled_covariance(locs, Matern(dim=2), (1.0, 0.1, 0.5), 50)
    dense = cov.to_dense() + 0.01 * np.eye(300)
    return TiledSymmetricMatrix.from_dense(dense, 50), dense


class TestCompression:
    def test_exact_rank(self, rng):
        u = rng.standard_normal((20, 3))
        v = rng.standard_normal((16, 3))
        lr = compress(u @ v.T, 1e-12)
        assert lr.rank == 3
        assert np.allclose(lr.to_dense(), u @ v.T)

    def test_tolerance_controls_error(self, rng):
        tile = rng.standard_normal((30, 30))
        tile = tile + 10 * np.outer(rng.standard_normal(30), rng.standard_normal(30))
        for tol in (1e-1, 1e-3):
            lr = compress(tile, tol)
            err = np.linalg.norm(lr.to_dense() - tile, 2)
            assert err <= tol * np.linalg.norm(tile, 2) * 1.001 or lr.rank == 30

    def test_max_rank_cap(self, rng):
        lr = compress(rng.standard_normal((20, 20)), 1e-14, max_rank=5)
        assert lr.rank == 5

    def test_zero_tile(self):
        lr = compress(np.zeros((8, 6)), 1e-6)
        assert lr.rank == 1
        assert np.allclose(lr.to_dense(), 0.0)

    def test_bytes_smaller_when_lowrank(self, rng):
        u = rng.standard_normal((64, 2))
        v = rng.standard_normal((64, 2))
        lr = compress(u @ v.T, 1e-10)
        assert lr.nbytes < 64 * 64 * 8

    def test_transpose(self, rng):
        lr = compress(rng.standard_normal((10, 6)), 1e-14)
        assert np.allclose(lr.T.to_dense(), lr.to_dense().T)

    def test_invalid_factors(self):
        with pytest.raises(ValueError):
            LowRankTile(np.zeros((4, 2)), np.zeros((4, 3)))


class TestRecompressAdd:
    def test_recompress_reduces_redundant_rank(self, rng):
        u = rng.standard_normal((20, 2))
        v = rng.standard_normal((20, 2))
        fat = LowRankTile(np.hstack([u, u]), np.hstack([v, v]))
        slim = recompress(fat, 1e-12)
        assert slim.rank <= 4
        assert np.allclose(slim.to_dense(), fat.to_dense(), atol=1e-10)

    def test_add_correct(self, rng):
        a = compress(rng.standard_normal((12, 12)), 1e-14, max_rank=3)
        b = compress(rng.standard_normal((12, 12)), 1e-14, max_rank=2)
        s = add_lowrank(a, b, 1e-13)
        assert np.allclose(s.to_dense(), a.to_dense() + b.to_dense(), atol=1e-9)

    def test_add_shape_mismatch(self, rng):
        a = compress(rng.standard_normal((12, 12)), 1e-6)
        b = compress(rng.standard_normal((10, 12)), 1e-6)
        with pytest.raises(ValueError):
            add_lowrank(a, b, 1e-6)

    @given(st.integers(0, 10**6), st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_property_add_exact_at_tight_tol(self, seed, ra, rb):
        rng = np.random.default_rng(seed)
        a = LowRankTile(rng.standard_normal((15, ra)), rng.standard_normal((15, ra)))
        b = LowRankTile(rng.standard_normal((15, rb)), rng.standard_normal((15, rb)))
        s = add_lowrank(a, b, 1e-13)
        ref = a.to_dense() + b.to_dense()
        assert np.linalg.norm(s.to_dense() - ref) <= 1e-9 * (1 + np.linalg.norm(ref))


class TestTLRMatrix:
    def test_roundtrip_accuracy(self, matern_mat):
        mat, dense = matern_mat
        tlr = TLRSymmetricMatrix.from_tiled(mat, 1e-8)
        rel = np.linalg.norm(tlr.to_dense() - dense) / np.linalg.norm(dense)
        assert rel < 1e-7

    def test_compression_improves_with_tol(self, matern_mat):
        mat, _ = matern_mat
        tight = TLRSymmetricMatrix.from_tiled(mat, 1e-10)
        loose = TLRSymmetricMatrix.from_tiled(mat, 1e-3)
        assert loose.memory_bytes() < tight.memory_bytes()
        assert loose.mean_rank() < tight.mean_rank()
        assert loose.compression_ratio() > 1.0

    def test_rank_map(self, matern_mat):
        mat, _ = matern_mat
        tlr = TLRSymmetricMatrix.from_tiled(mat, 1e-6)
        ranks = tlr.rank_map()
        assert ranks.shape == (6, 6)
        assert np.array_equal(ranks, ranks.T)
        assert all(ranks[t, t] == 50 for t in range(6))


class TestTLRCholesky:
    def test_residual_tracks_tolerance(self, matern_mat):
        mat, dense = matern_mat
        errs = {}
        for tol in (1e-9, 1e-4):
            tlr = TLRSymmetricMatrix.from_tiled(mat, tol)
            res = tlr_cholesky(tlr)
            l = np.tril(res.factor.to_dense())
            errs[tol] = np.linalg.norm(l @ l.T - dense) / np.linalg.norm(dense)
        assert errs[1e-9] < 1e-7
        assert errs[1e-9] < errs[1e-4] < 1e-2

    def test_matches_dense_cholesky_at_tight_tol(self, matern_mat):
        mat, dense = matern_mat
        tlr = TLRSymmetricMatrix.from_tiled(mat, 1e-12)
        res = tlr_cholesky(tlr)
        l = np.tril(res.factor.to_dense())
        assert np.allclose(l, np.linalg.cholesky(dense), atol=1e-6)

    def test_logdet(self, matern_mat):
        mat, dense = matern_mat
        res = tlr_cholesky(TLRSymmetricMatrix.from_tiled(mat, 1e-10))
        _s, ref = np.linalg.slogdet(dense)
        assert res.logdet() == pytest.approx(ref, rel=1e-6)

    def test_flop_savings_at_loose_tol(self, matern_mat):
        mat, _ = matern_mat
        loose = tlr_cholesky(TLRSymmetricMatrix.from_tiled(mat, 1e-3))
        tight = tlr_cholesky(TLRSymmetricMatrix.from_tiled(mat, 1e-10))
        assert loose.flops < tight.flops
        assert loose.flop_savings > tight.flop_savings

    def test_mixed_precision_tlr(self, matern_mat):
        """The future-work combination: precision map applied to LR factors."""
        mat, dense = matern_mat
        kmap = build_precision_map(tile_norms(mat), 1e-4)
        tlr = TLRSymmetricMatrix.from_tiled(mat, 1e-8)
        res = tlr_cholesky(tlr, kernel_map=kmap)
        l = np.tril(res.factor.to_dense())
        rel = np.linalg.norm(l @ l.T - dense) / np.linalg.norm(dense)
        assert rel < 1e-2  # dominated by the 1e-4 precision budget
        # and strictly worse than the unquantised TLR factorization
        res_full = tlr_cholesky(tlr)
        l_full = np.tril(res_full.factor.to_dense())
        rel_full = np.linalg.norm(l_full @ l_full.T - dense) / np.linalg.norm(dense)
        assert rel_full < rel

    def test_indefinite_raises(self, rng):
        from repro.tiles.kernels import NotPositiveDefiniteError

        a = rng.standard_normal((100, 100))
        sym = (a + a.T) / 2
        mat = TiledSymmetricMatrix.from_dense(sym, 25)
        with pytest.raises(NotPositiveDefiniteError):
            tlr_cholesky(TLRSymmetricMatrix.from_tiled(mat, 1e-8))

    def test_kernel_map_size_checked(self, matern_mat):
        mat, _ = matern_mat
        tlr = TLRSymmetricMatrix.from_tiled(mat, 1e-6)
        with pytest.raises(ValueError):
            tlr_cholesky(tlr, kernel_map=build_precision_map(np.ones((3, 3)), 1e-4))
