"""Unit tests for the Monte Carlo study harness."""

import numpy as np
import pytest

from repro.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.geostats.generator import SyntheticField
from repro.geostats.montecarlo import (
    BoxStats,
    MonteCarloStudy,
    ReplicaEstimate,
    run_monte_carlo,
)


def _study() -> MonteCarloStudy:
    study = MonteCarloStudy(
        field_name="2D-Matern",
        theta_true=(1.0, 0.1),
        param_names=("variance", "range"),
    )
    rng = np.random.default_rng(0)
    for label, spread in (("1e-02", 0.3), ("exact", 0.05)):
        for r in range(12):
            theta = (1.0 + spread * rng.standard_normal(), 0.1 + spread * 0.1 * rng.standard_normal())
            study.estimates.append(
                ReplicaEstimate(r, label, theta, loglik=-100.0, n_evals=50)
            )
    return study


class TestStudyAggregation:
    def test_accuracy_labels_ordered(self):
        study = _study()
        assert study.accuracy_labels() == ["1e-02", "exact"]

    def test_box_stats_fields(self):
        stats = _study().box_stats()
        assert len(stats) == 4  # 2 labels × 2 params
        for s in stats:
            assert s.q1 <= s.median <= s.q3
            assert s.n == 12
            assert s.iqr == s.q3 - s.q1

    def test_tighter_accuracy_smaller_spread(self):
        stats = {(s.accuracy_label, s.parameter): s for s in _study().box_stats()}
        assert stats[("exact", "variance")].std < stats[("1e-02", "variance")].std

    def test_median_bias(self):
        bias = _study().median_bias("exact")
        assert set(bias) == {"variance", "range"}
        assert bias["variance"] < 0.1

    def test_render(self):
        out = _study().render()
        assert "variance" in out and "exact" in out and "median" in out


class TestRunMonteCarlo:
    @pytest.fixture(scope="class")
    def study(self):
        field = SyntheticField.matern_2d(n=100, range_=0.1, smoothness=0.5, seed=4)
        return run_monte_carlo(
            field, ["exact", 1e-9], replicas=3, tile_size=25, max_evals=80, restarts=0
        )

    def test_all_estimates_present(self, study):
        assert len(study.estimates) == 6
        assert study.accuracy_labels() == ["exact", "1e-09"]

    def test_estimates_within_bounds(self, study):
        for est in study.estimates:
            assert all(0.01 <= v <= 2.0 for v in est.theta_hat)

    def test_tight_matches_exact_per_replica(self, study):
        by = {}
        for est in study.estimates:
            by.setdefault(est.replica, {})[est.accuracy_label] = est.theta_hat
        for replica, d in by.items():
            assert np.allclose(d["exact"], d["1e-09"], rtol=0.1, atol=0.02), (
                f"replica {replica}: {d}"
            )


class TestMonteCarloResilience:
    def _field(self):
        return SyntheticField.matern_2d(n=100, range_=0.1, smoothness=0.5, seed=4)

    def test_crashed_replica_lands_in_failures(self):
        """A permanently-crashing cell is recorded, the rest of the study
        completes (cell labels are '<accuracy>:<replica>')."""
        plan = FaultPlan((FaultSpec("crash_point", point="1e-09:1", times=None),))
        study = run_monte_carlo(
            self._field(), ["exact", 1e-9], replicas=3, tile_size=25,
            max_evals=80, restarts=0, fault_plan=plan,
        )
        assert len(study.estimates) == 5
        assert len(study.failures) == 1
        failure = study.failures[0]
        assert failure.replica == 1
        assert failure.accuracy_label == "1e-09"
        assert failure.attempts == 1
        assert "FaultInjectedError" in failure.error

    def test_transient_fault_recovered_by_retry(self):
        plan = FaultPlan((FaultSpec("transient", point="exact:0", times=1),))
        study = run_monte_carlo(
            self._field(), ["exact"], replicas=2, tile_size=25,
            max_evals=80, restarts=0, fault_plan=plan,
            retry_policy=RetryPolicy(max_retries=1, base_delay=0.0),
        )
        assert len(study.estimates) == 2
        assert not study.failures

    def test_faulted_study_matches_clean_study(self):
        """Surviving estimates are bit-identical with and without a fault
        plan — injection perturbs only the targeted cell."""
        clean = run_monte_carlo(
            self._field(), ["exact"], replicas=2, tile_size=25,
            max_evals=80, restarts=0,
        )
        plan = FaultPlan((FaultSpec("crash_point", point="exact:1", times=None),))
        faulted = run_monte_carlo(
            self._field(), ["exact"], replicas=2, tile_size=25,
            max_evals=80, restarts=0, fault_plan=plan,
        )
        assert len(faulted.estimates) == 1
        clean_r0 = next(e for e in clean.estimates if e.replica == 0)
        assert faulted.estimates[0].theta_hat == clean_r0.theta_hat
