"""Unit tests for exact and sampled tile norms."""

import numpy as np
import pytest

from repro.precision.errors import frobenius
from repro.tiles.norms import (
    global_norm_from_tile_norms,
    sampled_tile_norms,
    tile_norms,
)
from repro.tiles.tilematrix import TiledSymmetricMatrix


class TestExactNorms:
    def test_matches_dense_blocks(self, tiled_96, spd_96):
        norms = tile_norms(tiled_96)
        assert norms.shape == (6, 6)
        for i in range(6):
            for j in range(6):
                block = spd_96[16 * i : 16 * (i + 1), 16 * j : 16 * (j + 1)]
                assert norms[i, j] == pytest.approx(frobenius(block))

    def test_mirrored(self, tiled_96):
        norms = tile_norms(tiled_96)
        assert np.array_equal(norms, norms.T)

    def test_global_norm_consistency(self, tiled_96, spd_96):
        norms = tile_norms(tiled_96)
        assert global_norm_from_tile_norms(norms) == pytest.approx(frobenius(spd_96))


class TestSampledNorms:
    def _oracle(self, dense):
        def entry(rows, cols):
            return dense[np.asarray(rows), np.asarray(cols)]

        return entry

    def test_exact_when_tiles_small(self, spd_96):
        norms = sampled_tile_norms(96, 16, self._oracle(spd_96), samples_per_tile=10**6)
        exact = tile_norms(TiledSymmetricMatrix.from_dense(spd_96, 16))
        assert np.allclose(norms, exact)

    def test_unbiased_estimate(self, spd_96):
        """Sampled estimate converges to the exact norm."""
        exact = tile_norms(TiledSymmetricMatrix.from_dense(spd_96, 48))
        rng = np.random.default_rng(0)
        norms = sampled_tile_norms(
            96, 48, self._oracle(spd_96), samples_per_tile=1500, rng=rng
        )
        rel_err = np.abs(norms - exact) / exact
        assert np.max(rel_err) < 0.2

    def test_mirrored(self, spd_96):
        norms = sampled_tile_norms(96, 32, self._oracle(spd_96), samples_per_tile=20)
        assert np.array_equal(norms, norms.T)

    def test_deterministic_with_rng(self, spd_96):
        a = sampled_tile_norms(
            96, 32, self._oracle(spd_96), samples_per_tile=16,
            rng=np.random.default_rng(7),
        )
        b = sampled_tile_norms(
            96, 32, self._oracle(spd_96), samples_per_tile=16,
            rng=np.random.default_rng(7),
        )
        assert np.array_equal(a, b)

    def test_ragged(self, rng):
        a = rng.standard_normal((50, 50))
        dense = a @ a.T
        norms = sampled_tile_norms(50, 16, self._oracle(dense), samples_per_tile=10**6)
        exact = tile_norms(TiledSymmetricMatrix.from_dense(dense, 16))
        assert np.allclose(norms, exact)
