"""Cross-cutting hypothesis property tests on system-level invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConversionStrategy,
    build_cholesky_dag,
    build_comm_precision_map,
    build_precision_map,
    simulate_cholesky,
    two_precision_map,
    uniform_map,
)
from repro.perfmodel.gpus import NodeSpec, V100
from repro.precision import Precision, bytes_per_element
from repro.runtime import Platform, execute_numeric
from repro.tiles import TiledSymmetricMatrix
from repro.tiles.norms import tile_norms


def _platform(n_gpus=1, n_nodes=1):
    node = NodeSpec("t", V100, n_gpus, 256e9, 25e9, 1.5e-6)
    return Platform(node=node, n_nodes=n_nodes)


@given(st.integers(2, 6), st.integers(0, 10**6), st.sampled_from([1e-2, 1e-6, 1e-10]))
@settings(max_examples=20, deadline=None)
def test_dag_equals_sequential_for_random_spd(nt, seed, accuracy):
    """PTG unrolling ≡ Algorithm 1, for arbitrary SPD inputs and maps."""
    from repro.core.cholesky import mp_cholesky

    rng = np.random.default_rng(seed)
    nb = 8
    n = nt * nb
    a = rng.standard_normal((n, n))
    mat = TiledSymmetricMatrix.from_dense(a @ a.T + 2 * n * np.eye(n), nb)
    kmap = build_precision_map(tile_norms(mat), accuracy)
    ref = mp_cholesky(mat, kmap).factor.lower_dense()
    out = execute_numeric(build_cholesky_dag(n, nb, kmap).graph, mat).lower_dense()
    assert np.array_equal(out, ref)


@given(st.integers(4, 8), st.integers(1, 4),
       st.sampled_from([Precision.FP16, Precision.FP16_32, Precision.FP32]))
@settings(max_examples=15, deadline=None)
def test_stc_never_slower_or_heavier(nt, n_gpus, low):
    """STC dominates TTC in time, bytes, and conversion count.

    NT ≥ 4 so each panel broadcast feeds GEMMs: with no fan-out (NT = 2)
    STC's one sender conversion is not amortised and its conversion
    *count* can exceed TTC's by one while time still wins.
    """
    nb = 512
    kmap = two_precision_map(nt, low)
    plat = _platform(n_gpus)
    stc = simulate_cholesky(nt * nb, nb, kmap, plat, strategy=ConversionStrategy.AUTO,
                            record_events=False)
    ttc = simulate_cholesky(nt * nb, nb, kmap, plat, strategy=ConversionStrategy.TTC,
                            record_events=False)
    assert stc.makespan <= ttc.makespan * 1.0001
    assert stc.stats.h2d_bytes <= ttc.stats.h2d_bytes * 1.0001
    assert stc.stats.n_conversions <= ttc.stats.n_conversions


@given(st.integers(2, 8), st.integers(0, 10**6))
@settings(max_examples=20, deadline=None)
def test_payload_bytes_never_exceed_storage(nt, seed):
    """No dataflow edge carries more bytes than the tile's storage form."""
    rng = np.random.default_rng(seed)
    codes = rng.choice(
        [int(Precision.FP64), int(Precision.FP32), int(Precision.FP16_32),
         int(Precision.FP16)],
        size=(nt, nt),
    ).astype(np.int8)
    codes = np.maximum(codes, codes.T)
    np.fill_diagonal(codes, int(Precision.FP64))
    from repro.core.precision_map import KernelPrecisionMap

    kmap = KernelPrecisionMap(nt=nt, codes=codes)
    dag = build_cholesky_dag(nt * 64, 64, kmap, strategy=ConversionStrategy.AUTO)
    for task in dag.graph:
        for inp in task.inputs:
            assert bytes_per_element(inp.payload_precision) <= bytes_per_element(
                inp.storage_precision
            )


@given(st.integers(2, 6), st.integers(1, 3), st.integers(1, 2))
@settings(max_examples=15, deadline=None)
def test_simulation_conservation_laws(nt, gpus, nodes):
    """Makespan bounds and byte conservation hold for any platform shape."""
    nb = 256
    kmap = uniform_map(nt, Precision.FP64)
    plat = _platform(gpus, nodes)
    rep = simulate_cholesky(nt * nb, nb, kmap, plat, record_events=True)
    # all tasks ran
    n_tasks = nt + nt * (nt - 1) + nt * (nt - 1) * (nt - 2) // 6
    assert rep.stats.n_tasks == n_tasks
    # makespan at least the per-rank serial compute max
    busy = max(
        rep.trace.busy_seconds("compute", r) for r in range(plat.n_ranks)
    )
    assert rep.makespan >= busy * 0.999
    # every h2d byte is accounted in the per-precision split
    assert rep.stats.h2d_bytes == sum(rep.stats.h2d_bytes_by_precision.values())
    # single node never touches the NIC
    if nodes == 1:
        assert rep.stats.nic_bytes == 0


@given(st.integers(0, 10**6), st.sampled_from([1e-3, 1e-6]))
@settings(max_examples=10, deadline=None)
def test_factor_storage_respects_map(seed, accuracy):
    """Factor tiles rest in the dtype their kernel precision dictates."""
    rng = np.random.default_rng(seed)
    n, nb = 64, 8
    a = rng.standard_normal((n, n))
    mat = TiledSymmetricMatrix.from_dense(a @ a.T + 2 * n * np.eye(n), nb)
    kmap = build_precision_map(tile_norms(mat), accuracy)
    from repro.core.cholesky import mp_cholesky

    res = mp_cholesky(mat, kmap)
    for i in range(kmap.nt):
        for j in range(i + 1):
            tile = res.factor.tiles[(i, j)]
            if i == j:
                assert tile.dtype == np.float64
            else:
                expected = np.float64 if kmap.kernel(i, j) == Precision.FP64 else np.float32
                assert tile.dtype == expected
