"""Span nesting, the JSONL event log, and their integration."""

import json
import threading

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_state():
    """Tests must not leak the process event log or metrics."""
    assert obs.get_event_log() is None
    yield
    obs.set_event_log(None)
    obs.reset_metrics()


class TestSpans:
    def test_nesting_builds_slash_paths(self):
        paths = []
        with obs.span("outer"):
            paths.append(obs.current_span_path())
            with obs.span("inner"):
                paths.append(obs.current_span_path())
            paths.append(obs.current_span_path())
        assert paths == ["outer", "outer/inner", "outer"]
        assert obs.current_span_path() is None

    def test_span_records_timer_metric(self):
        with obs.span("timed.region"):
            pass
        timer = obs.get_registry().timer("span.duration_seconds")
        assert timer.count(span="timed.region") == 1

    def test_span_handle_attrs_and_duration(self):
        with obs.span("s", a=1) as handle:
            handle.set(b=2)
        assert handle.duration is not None and handle.duration >= 0.0
        assert handle.attrs == {"a": 1, "b": 2}

    def test_stack_unwinds_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.span("boom"):
                raise RuntimeError("x")
        assert obs.current_span_path() is None

    def test_traced_decorator_bare_and_named(self):
        @obs.traced
        def f():
            return obs.current_span_path()

        @obs.traced("custom.name")
        def g():
            return obs.current_span_path()

        assert f().endswith("f")
        assert g() == "custom.name"

    def test_threads_have_independent_stacks(self):
        seen = {}

        def work():
            with obs.span("worker"):
                seen["worker"] = obs.current_span_path()

        with obs.span("main"):
            t = threading.Thread(target=work)
            t.start()
            t.join()
            assert obs.current_span_path() == "main"
        # the worker thread did not inherit the main thread's stack
        assert seen["worker"] == "worker"


class TestEventLog:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.EventLog(path, run_id="r1") as log:
            log.emit("alpha", attrs={"x": 1, "theta": (0.5, 1.5)})
            log.emit("beta", span="a/b", attrs={"prec": "FP16"})
        events = obs.read_events(path)
        assert [e["type"] for e in events] == ["alpha", "beta"]
        assert all(e["run_id"] == "r1" for e in events)
        assert events[0]["attrs"] == {"x": 1, "theta": [0.5, 1.5]}
        assert events[1]["span"] == "a/b"
        assert [e["seq"] for e in events] == [0, 1]
        # monotonic timestamps
        assert events[0]["ts"] <= events[1]["ts"]

    def test_each_line_is_standalone_json(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.EventLog(path) as log:
            log.emit("a")
            log.emit("b")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)

    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.EventLog(path) as log:
            log.emit("ok")
        with open(path, "a") as fh:
            fh.write('{"type": "torn')  # crash mid-write
        events = obs.read_events(path)
        assert [e["type"] for e in events] == ["ok"]

    def test_emit_after_close_is_dropped(self, tmp_path):
        log = obs.EventLog(tmp_path / "run.jsonl")
        log.close()
        log.emit("late")  # must not raise
        assert obs.read_events(tmp_path / "run.jsonl") == []

    def test_nonstring_attrs_are_coerced(self, tmp_path):
        import numpy as np

        from repro.precision import Precision

        path = tmp_path / "run.jsonl"
        with obs.EventLog(path) as log:
            log.emit("e", attrs={"p": Precision.FP16, "arr": np.arange(3),
                                 "scalar": np.float64(1.5)})
        ev = obs.read_events(path)[0]
        assert ev["attrs"]["p"] == "FP16"
        assert ev["attrs"]["arr"] == [0, 1, 2]
        assert ev["attrs"]["scalar"] == 1.5


class TestGlobalWiring:
    def test_emit_event_noop_without_log(self):
        obs.emit_event("nothing", {"x": 1})  # must not raise

    def test_event_log_context_attaches_and_restores(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.event_log(path, run_id="ctx") as log:
            assert obs.get_event_log() is log
            obs.emit_event("inside", {"n": 3})
        assert obs.get_event_log() is None
        events = obs.read_events(path)
        assert events[0]["type"] == "inside"
        assert events[0]["attrs"] == {"n": 3}

    def test_span_event_carries_path_and_attrs(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.event_log(path):
            with obs.span("outer"):
                with obs.span("inner", tile=(1, 2)):
                    pass
        events = obs.read_events(path)
        spans = [e for e in events if e["type"] == "span"]
        assert [e["span"] for e in spans] == ["outer/inner", "outer"]
        assert spans[0]["attrs"]["tile"] == [1, 2]
        assert spans[0]["attrs"]["duration_seconds"] >= 0.0

    def test_span_error_is_recorded(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.event_log(path):
            with pytest.raises(ValueError):
                with obs.span("failing"):
                    raise ValueError("nope")
        ev = obs.read_events(path)[0]
        assert ev["attrs"]["error"] == "ValueError"
