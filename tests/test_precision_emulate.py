"""Unit and property tests for reduced-precision emulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.precision.emulate import (
    quantize,
    quantize_batch,
    quantize_tile,
    storage_dtype,
    truncate_mantissa,
)
from repro.precision.formats import Precision

# normal-range floats (mantissa truncation on subnormals loses relative
# accuracy by design, as on real hardware)
finite_f32 = st.one_of(
    st.just(0.0),
    st.floats(min_value=1e-30, max_value=1e20, allow_nan=False, allow_infinity=False),
    st.floats(min_value=-1e20, max_value=-1e-30, allow_nan=False, allow_infinity=False),
).map(np.float32)


class TestTruncateMantissa:
    def test_keep_all_bits_is_identity(self, rng):
        x = rng.standard_normal(100).astype(np.float32)
        assert np.array_equal(truncate_mantissa(x, 24), x)

    def test_tf32_grid(self):
        # 11-bit significand: 1 + 2^-10 is representable, 1 + 2^-11 rounds
        x = np.array([1.0 + 2.0**-10, 1.0 + 2.0**-12], dtype=np.float32)
        out = truncate_mantissa(x, 11)
        assert out[0] == np.float32(1.0 + 2.0**-10)
        assert out[1] == np.float32(1.0)  # rounds down to even

    def test_round_to_nearest(self):
        # half-ulp tie rounds to even; just above half-ulp rounds up
        x = np.array([1.0 + 3 * 2.0**-12], dtype=np.float32)  # 0.75 ulp of 11-bit grid
        out = truncate_mantissa(x, 11)
        assert out[0] == np.float32(1.0 + 2.0**-10)

    @given(hnp.arrays(np.float32, 16, elements=finite_f32), st.integers(8, 23))
    @settings(max_examples=60)
    def test_error_bounded_by_ulp(self, x, bits):
        out = truncate_mantissa(x, bits)
        finite = np.isfinite(out)
        err = np.abs(out[finite] - x[finite])
        bound = np.abs(x[finite]) * 2.0 ** (1 - bits) + 1e-45
        assert np.all(err <= bound)

    @given(hnp.arrays(np.float32, 16, elements=finite_f32), st.integers(8, 23))
    @settings(max_examples=60)
    def test_idempotent(self, x, bits):
        once = truncate_mantissa(x, bits)
        twice = truncate_mantissa(once, bits)
        both_nan = np.isnan(once) & np.isnan(twice)
        assert np.array_equal(once[~both_nan], twice[~both_nan])


class TestTruncateMantissaNonFinite:
    """Regression battery for the non-finite corruption bug.

    The rounding add used to carry a low-payload NaN into ±inf and wrap
    the all-ones bit pattern (a negative NaN) around the uint32 range
    into a denormal.  Non-finite lanes must now pass through bit-exactly.
    """

    def test_low_payload_nan_stays_nan(self):
        # 0x7F800001: quiet bit clear, payload 1 — the rounding add used
        # to overflow the mantissa field and turn this into +inf
        x = np.array([0x7F800001], dtype=np.uint32).view(np.float32)
        for bits in (8, 11, 16, 23):
            out = truncate_mantissa(x, bits)
            assert out.view(np.uint32)[0] == 0x7F800001

    def test_all_ones_pattern_stays_nan(self):
        # 0xFFFFFFFF: negative NaN with full payload — the rounding add
        # used to wrap the uint32 and produce a tiny denormal
        x = np.array([0xFFFFFFFF], dtype=np.uint32).view(np.float32)
        for bits in (8, 11, 16, 23):
            out = truncate_mantissa(x, bits)
            assert out.view(np.uint32)[0] == 0xFFFFFFFF

    def test_infinities_pass_through(self):
        x = np.array([np.inf, -np.inf], dtype=np.float32)
        out = truncate_mantissa(x, 8)
        assert out[0] == np.inf and out[1] == -np.inf

    def test_mixed_lanes_round_finite_only(self):
        x = np.array([1.0 + 2.0**-12, np.nan, np.inf, -3.0], dtype=np.float32)
        out = truncate_mantissa(x, 11)
        assert out[0] == np.float32(1.0)
        assert np.isnan(out[1]) and np.isinf(out[2]) and out[3] == np.float32(-3.0)

    @given(
        hnp.arrays(np.uint32, 32, elements=st.integers(0, 2**32 - 1)),
        st.integers(1, 23),
    )
    @settings(max_examples=120)
    def test_bit_pattern_classes_preserved(self, raw, bits):
        """Any float32 bit pattern in → same IEEE class out.

        Non-finite lanes are bit-exact; finite lanes either stay finite
        or saturate to ±inf of the same sign (round past FLT_MAX).
        """
        x = raw.view(np.float32)
        out = truncate_mantissa(x, bits)
        out_bits = out.view(np.uint32)
        for xin, bin_, bout in zip(x, raw, out_bits):
            if not np.isfinite(xin):
                assert bout == bin_  # NaN payloads and infinities untouched
            else:
                yv = np.array([bout], dtype=np.uint32).view(np.float32)[0]
                if np.isinf(yv):
                    assert np.signbit(yv) == np.signbit(xin)
                else:
                    assert np.isfinite(yv)

    @given(
        hnp.arrays(np.uint32, 16, elements=st.integers(0, 2**32 - 1)),
        st.integers(1, 23),
    )
    @settings(max_examples=60)
    def test_finite_lanes_match_pure_finite_call(self, raw, bits):
        """Non-finite lanes must not perturb the rounding of finite ones."""
        x = raw.view(np.float32)
        out = truncate_mantissa(x, bits)
        finite = np.isfinite(x)
        expected = truncate_mantissa(np.where(finite, x, np.float32(0.0)), bits)
        assert np.array_equal(
            out[finite].view(np.uint32), expected[finite].view(np.uint32)
        )


class TestQuantizeBatch:
    @pytest.mark.parametrize("prec", list(Precision))
    def test_matches_per_tile_quantize(self, prec, rng):
        tiles = [
            rng.standard_normal((4, 4)),
            rng.standard_normal((7, 3)),
            rng.uniform(-1e5, 1e5, size=(1, 9)),  # exercises FP16 saturation
            np.zeros((2, 2)),
        ]
        batched = quantize_batch(tiles, prec)
        for t, b in zip(tiles, batched):
            assert b.shape == t.shape and b.dtype == np.float64
            assert np.array_equal(b, quantize(t, prec), equal_nan=True)

    def test_empty_list(self):
        assert quantize_batch([], Precision.FP16) == []

    def test_fp64_passthrough_values(self, rng):
        tiles = [rng.standard_normal((3, 3))]
        out = quantize_batch(tiles, Precision.FP64)
        assert np.array_equal(out[0], tiles[0])

    def test_ragged_and_empty_tiles(self, rng):
        tiles = [rng.standard_normal((5,)), np.empty((0, 4)), rng.standard_normal((2, 2, 2))]
        out = quantize_batch(tiles, Precision.TF32)
        assert [o.shape for o in out] == [(5,), (0, 4), (2, 2, 2)]
        for t, b in zip(tiles, out):
            assert np.array_equal(b, quantize(t, Precision.TF32))


class TestQuantize:
    def test_fp64_identity(self, rng):
        x = rng.standard_normal(50)
        assert quantize(x, Precision.FP64) is x or np.array_equal(quantize(x, Precision.FP64), x)

    @pytest.mark.parametrize("prec", list(Precision))
    def test_dtype_is_float64(self, prec, rng):
        out = quantize(rng.standard_normal(10), prec)
        assert out.dtype == np.float64

    @pytest.mark.parametrize(
        "prec,rel_bound",
        [
            (Precision.FP32, 2.0**-24),
            (Precision.TF32, 2.0**-11),
            (Precision.BF16_32, 2.0**-8),
            (Precision.FP16, 2.0**-11),
            (Precision.FP16_32, 2.0**-11),
        ],
    )
    def test_relative_error_bound(self, prec, rel_bound, rng):
        x = rng.uniform(0.5, 2.0, size=1000)  # away from subnormals
        out = quantize(x, prec)
        assert np.max(np.abs(out - x) / x) <= rel_bound

    @pytest.mark.parametrize("prec", list(Precision))
    def test_idempotent(self, prec, rng):
        x = rng.standard_normal(100)
        once = quantize(x, prec)
        assert np.array_equal(quantize(once, prec), once)

    def test_fp16_saturates(self):
        out = quantize(np.array([1e6, -1e6]), Precision.FP16)
        assert np.isinf(out[0]) and np.isinf(out[1])

    def test_fp32_does_not_saturate_at_1e6(self):
        out = quantize(np.array([1e6]), Precision.FP32)
        assert out[0] == pytest.approx(1e6)

    @given(hnp.arrays(np.float64, 8, elements=st.floats(-1e4, 1e4)))
    @settings(max_examples=50)
    def test_monotone(self, x):
        """Quantisation preserves ordering (round-to-nearest is monotone)."""
        for prec in (Precision.FP32, Precision.FP16, Precision.TF32):
            q = quantize(np.sort(x), prec)
            assert np.all(np.diff(q) >= 0.0)


class TestQuantizeTile:
    def test_storage_dtypes(self):
        assert storage_dtype(Precision.FP64) == np.float64
        assert storage_dtype(Precision.FP32) == np.float32
        assert storage_dtype(Precision.FP16_32) == np.float32
        assert storage_dtype(Precision.TF32) == np.float32
        assert storage_dtype(Precision.FP16) == np.float16

    @pytest.mark.parametrize("prec", list(Precision))
    def test_tile_dtype_matches(self, prec, rng):
        tile = rng.standard_normal((8, 8))
        out = quantize_tile(tile, prec)
        assert out.dtype == storage_dtype(prec)

    def test_values_preserved_on_widening_roundtrip(self, rng):
        tile = rng.standard_normal((8, 8))
        q = quantize_tile(tile, Precision.FP16)
        # a second FP32 cast of FP16 data is exact
        assert np.array_equal(
            q.astype(np.float32).astype(np.float16), q
        )
