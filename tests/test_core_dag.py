"""Unit tests for the Cholesky PTG (DAG construction)."""

import numpy as np
import pytest

from repro.core.config import ConversionStrategy
from repro.core.dag_cholesky import build_cholesky_dag
from repro.core.precision_map import two_precision_map, uniform_map
from repro.precision import Precision
from repro.tiles.distribution import ProcessGrid


def _dag(nt=5, nb=16, prec=Precision.FP16, strategy=ConversionStrategy.AUTO, grid=None):
    kmap = two_precision_map(nt, prec) if prec != Precision.FP64 else uniform_map(nt, prec)
    return build_cholesky_dag(nt * nb, nb, kmap, strategy=strategy, grid=grid)


class TestCensus:
    @pytest.mark.parametrize("nt", [1, 2, 4, 7])
    def test_task_counts(self, nt):
        dag = _dag(nt=nt)
        counts = dag.graph.counts_by_kind()
        assert counts["POTRF"] == nt
        assert counts.get("TRSM", 0) == nt * (nt - 1) // 2
        assert counts.get("SYRK", 0) == nt * (nt - 1) // 2
        assert counts.get("GEMM", 0) == nt * (nt - 1) * (nt - 2) // 6

    def test_flops_total(self):
        nt, nb = 6, 16
        dag = _dag(nt=nt, nb=nb)
        expected = (
            nt * nb**3 / 3
            + nt * (nt - 1) / 2 * (nb**3 + nb**3 + nb**2)
            + nt * (nt - 1) * (nt - 2) / 6 * 2 * nb**3
        )
        assert dag.graph.total_flops() == pytest.approx(expected)

    @pytest.mark.parametrize("n,nb", [(87, 16), (100, 16), (33, 32)])
    def test_flops_total_ragged(self, n, nb):
        """nb ∤ n: ragged edge tiles are rectangular and must be priced
        per dimension, not by cubing a single edge (regression)."""
        nt = -(-n // nb)
        kmap = uniform_map(nt, Precision.FP64)
        dag = build_cholesky_dag(n, nb, kmap)

        def edge(i):
            return nb if i < nt - 1 else n - (nt - 1) * nb

        expected = sum(edge(k) ** 3 / 3 for k in range(nt))
        expected += sum(
            edge(m) * edge(k) ** 2 for k in range(nt) for m in range(k + 1, nt)
        )
        expected += sum(
            edge(m) ** 2 * edge(k) + edge(m) ** 2
            for k in range(nt) for m in range(k + 1, nt)
        )
        expected += sum(
            2 * edge(m) * edge(nn) * edge(k)
            for k in range(nt)
            for nn in range(k + 1, nt)
            for m in range(nn + 1, nt)
        )
        assert dag.graph.total_flops() == pytest.approx(expected, rel=1e-12)

    def test_flops_total_ragged_matches_dtd(self):
        """The DTD discovery path prices ragged tiles identically."""
        from repro.core.dtd_cholesky import build_cholesky_dag_dtd

        n, nb = 87, 16
        kmap = uniform_map(-(-n // nb), Precision.FP64)
        ptg = build_cholesky_dag(n, nb, kmap)
        dtd = build_cholesky_dag_dtd(n, nb, kmap)
        assert dtd.graph.total_flops() == pytest.approx(
            ptg.graph.total_flops(), rel=1e-12
        )

    def test_map_size_validation(self):
        with pytest.raises(ValueError, match="inconsistent"):
            build_cholesky_dag(100, 16, uniform_map(5, Precision.FP64))


class TestDataflow:
    def test_input_ordering_convention(self):
        dag = _dag(nt=4)
        for task in dag.graph:
            if task.kind == "POTRF":
                assert len(task.inputs) == 1 and task.inputs[0].role == "inout"
            elif task.kind == "TRSM":
                assert [i.role for i in task.inputs] == ["in", "inout"]
            elif task.kind == "SYRK":
                assert [i.role for i in task.inputs] == ["in", "inout"]
            elif task.kind == "GEMM":
                assert [i.role for i in task.inputs] == ["in", "in", "inout"]

    def test_version_chain(self):
        dag = _dag(nt=4)
        by_label = {t.label: t for t in dag.graph}
        # GEMM(3,2,k) chain on tile (3,2): versions bump by iteration
        g0 = by_label["GEMM(3, 2, 0)"]
        g1 = by_label["GEMM(3, 2, 1)"]
        assert g0.output.version == 1
        assert g1.output.version == 2
        assert g1.inputs[2].producer == g0.tid
        # TRSM(3,2) consumes the last GEMM's output
        t = by_label["TRSM(3, 2)"]
        assert t.inputs[1].producer == g1.tid
        assert t.inputs[1].tile.version == 2

    def test_potrf_reads_syrk(self):
        dag = _dag(nt=3)
        by_label = {t.label: t for t in dag.graph}
        p2 = by_label["POTRF(2,)"]
        assert p2.inputs[0].producer == by_label["SYRK(2, 1)"].tid

    def test_first_iteration_reads_host_tiles(self):
        dag = _dag(nt=3)
        host_reads = [
            inp for t in dag.graph for inp in t.inputs if inp.producer is None
        ]
        # every tile of the lower triangle enters exactly once from the host
        tiles = {(i.tile.i, i.tile.j) for i in host_reads}
        assert tiles == {(0, 0), (1, 0), (1, 1), (2, 0), (2, 1), (2, 2)}

    def test_graph_is_dag_and_topological(self):
        dag = _dag(nt=6)
        order = dag.graph.topological_order()
        pos = {tid: i for i, tid in enumerate(order)}
        for task in dag.graph:
            for p in dag.graph.predecessors(task.tid):
                assert pos[p] < pos[task.tid]


class TestPrecisionAnnotations:
    def test_trsm_exec_precision(self):
        dag = _dag(nt=4, prec=Precision.FP16)
        for task in dag.graph:
            if task.kind == "TRSM":
                assert task.precision == Precision.FP32
            if task.kind in ("POTRF", "SYRK"):
                assert task.precision == Precision.FP64
            if task.kind == "GEMM":
                assert task.precision == Precision.FP16

    def test_stc_sender_conversions(self):
        dag = _dag(nt=4, prec=Precision.FP16, strategy=ConversionStrategy.AUTO)
        for task in dag.graph:
            if task.kind == "TRSM":
                # storage FP32 → payload FP16: one sender conversion
                assert task.sender_conversion == (Precision.FP32, Precision.FP16)
            if task.kind == "POTRF" and task.params[0] < 3:
                assert task.sender_conversion == (Precision.FP64, Precision.FP32)

    def test_ttc_no_sender_conversions(self):
        dag = _dag(nt=4, prec=Precision.FP16, strategy=ConversionStrategy.TTC)
        assert all(t.sender_conversion is None for t in dag.graph)

    def test_fp16_resting_chain(self):
        """FP16 GEMM chains keep the accumulator tile in FP16 encoding."""
        dag = _dag(nt=5, prec=Precision.FP16)
        by_label = {t.label: t for t in dag.graph}
        g = by_label["GEMM(4, 3, 1)"]
        assert g.output_precision == Precision.FP16
        assert g.inputs[2].payload_precision == Precision.FP16  # from GEMM(4,3,0)
        g0 = by_label["GEMM(4, 3, 0)"]
        assert g0.inputs[2].payload_precision == Precision.FP32  # host tile at rest

    def test_fp64_everything_fp64(self):
        dag = _dag(nt=4, prec=Precision.FP64)
        for task in dag.graph:
            assert task.precision == Precision.FP64
            assert task.output_precision == Precision.FP64
            for inp in task.inputs:
                assert inp.payload_precision == Precision.FP64


class TestOwnership:
    def test_owner_computes(self):
        grid = ProcessGrid(2, 2)
        dag = _dag(nt=6, grid=grid)
        for task in dag.graph:
            i, j = task.output.i, task.output.j
            assert task.rank == grid.owner(i, j)

    def test_priorities_by_iteration(self):
        dag = _dag(nt=4)
        by_label = {t.label: t for t in dag.graph}
        assert by_label["POTRF(0,)"].priority < by_label["TRSM(1, 0)"].priority
        assert by_label["GEMM(2, 1, 0)"].priority < by_label["POTRF(1,)"].priority + 4
