"""Unit tests for the transfer and network models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perfmodel.gpus import SUMMIT_NODE, V100
from repro.perfmodel.network import (
    NetworkModel,
    broadcast_steps,
    broadcast_time,
    message_time,
)
from repro.perfmodel.transfers import (
    TransferModel,
    d2h_time,
    h2d_time,
    host_copy_time,
    tile_bytes,
)
from repro.precision import Precision


class TestTileBytes:
    def test_fp64_tile(self):
        assert tile_bytes(2048, Precision.FP64) == 2048 * 2048 * 8

    def test_precision_halving(self):
        n = 1024
        assert tile_bytes(n, Precision.FP32) == tile_bytes(n, Precision.FP64) // 2
        assert tile_bytes(n, Precision.FP16) == tile_bytes(n, Precision.FP64) // 4


class TestTransferTimes:
    def test_table2_move_anchor(self):
        """Tile-move times reproduce Table II within 5 %."""
        assert h2d_time(V100, 2048, Precision.FP64) * 1e3 == pytest.approx(0.67, rel=0.05)
        assert h2d_time(V100, 10240, Precision.FP16) * 1e3 == pytest.approx(4.19, rel=0.05)

    def test_symmetric_link(self):
        assert h2d_time(V100, 4096, Precision.FP32) == d2h_time(V100, 4096, Precision.FP32)

    @given(st.integers(64, 8192))
    @settings(max_examples=30)
    def test_lower_precision_always_faster(self, nb):
        t64 = h2d_time(V100, nb, Precision.FP64)
        t32 = h2d_time(V100, nb, Precision.FP32)
        t16 = h2d_time(V100, nb, Precision.FP16)
        assert t16 < t32 < t64

    def test_latency_floor(self):
        assert h2d_time(V100, 1, Precision.FP16) >= V100.host_link_latency

    def test_host_copy(self):
        t = host_copy_time(SUMMIT_NODE, 1e9)
        assert t == pytest.approx(1e9 / SUMMIT_NODE.cpu_memory_bandwidth)

    def test_model_bundle(self):
        tm = TransferModel(gpu=V100, nb=2048)
        assert tm.bytes(Precision.FP64) == tile_bytes(2048, Precision.FP64)
        assert tm.h2d(Precision.FP64) == h2d_time(V100, 2048, Precision.FP64)
        assert tm.d2h(Precision.FP16) == d2h_time(V100, 2048, Precision.FP16)


class TestNetwork:
    def test_alpha_beta(self):
        t = message_time(SUMMIT_NODE, 1e9)
        assert t == pytest.approx(SUMMIT_NODE.nic_latency + 1e9 / SUMMIT_NODE.nic_bandwidth)

    @pytest.mark.parametrize("n,steps", [(0, 0), (1, 1), (2, 2), (3, 2), (7, 3), (8, 4), (63, 6)])
    def test_binomial_steps(self, n, steps):
        assert broadcast_steps(n) == steps

    def test_broadcast_time_grows_logarithmically(self):
        t8 = broadcast_time(SUMMIT_NODE, 1e8, 8)
        t64 = broadcast_time(SUMMIT_NODE, 1e8, 64)
        assert t64 / t8 < 3.0  # log2(65)/log2(9) ≈ 1.9

    def test_model_bundle(self):
        nm = NetworkModel(node=SUMMIT_NODE)
        assert nm.p2p(1e6) == message_time(SUMMIT_NODE, 1e6)
        assert nm.bcast(1e6, 5) == broadcast_time(SUMMIT_NODE, 1e6, 5)
