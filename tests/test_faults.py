"""Unit tests for the fault-injection & retry subsystem (repro.faults)."""

import pytest

from repro.faults import (
    FAULT_KINDS,
    FaultInjectedError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryError,
    RetryPolicy,
    call_with_retry,
    retry,
)
from repro.obs import get_registry
from repro.runtime.distributed import _RollingDeadline


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec("meteor_strike")
        with pytest.raises(ValueError, match="rank and task"):
            FaultSpec("kill_rank", rank=1)
        with pytest.raises(ValueError, match="rank and message"):
            FaultSpec("drop_message", rank=1)
        with pytest.raises(ValueError, match="point"):
            FaultSpec("crash_point")
        with pytest.raises(ValueError, match="mode"):
            FaultSpec("kill_rank", rank=0, task=0, mode="gently")
        with pytest.raises(ValueError, match="probability"):
            FaultSpec("transient", point="", probability=1.5)
        with pytest.raises(ValueError, match="times"):
            FaultSpec("transient", point="", times=0)

    def test_all_kinds_constructible(self):
        FaultSpec("kill_rank", rank=0, task=3)
        FaultSpec("drop_message", rank=0, message=2)
        FaultSpec("delay_message", rank=1, message=0, delay_s=0.1)
        FaultSpec("crash_point", point="abc")
        FaultSpec("transient", point="")
        assert len(FAULT_KINDS) == 5


class TestFaultPlan:
    def plan(self) -> FaultPlan:
        return FaultPlan(
            (
                FaultSpec("kill_rank", rank=1, task=3, mode="exit0"),
                FaultSpec("transient", point="xyz", times=2, note="blip"),
            ),
            seed=7,
        )

    def test_roundtrip_dict_and_json(self):
        plan = self.plan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_save_load(self, tmp_path):
        plan = self.plan()
        path = plan.save(tmp_path / "plan.json")
        assert FaultPlan.load(path) == plan

    def test_with_fault_and_len(self):
        plan = FaultPlan().with_fault(FaultSpec("transient", point=""))
        assert len(plan) == 1
        assert list(plan)[0].kind == "transient"

    def test_picklable(self):
        import pickle

        plan = self.plan()
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestFaultInjector:
    def test_kill_matching_and_times(self):
        inj = FaultInjector(FaultPlan((FaultSpec("kill_rank", rank=1, task=3),)))
        assert inj.kill_at(0, 3) is None
        assert inj.kill_at(1, 2) is None
        assert inj.kill_at(1, 3) is not None
        assert inj.kill_at(1, 3) is None  # times=1 exhausted

    def test_unlimited_times(self):
        inj = FaultInjector(FaultPlan((FaultSpec("crash_point", point="", times=None),)))
        for _ in range(5):
            assert inj.point_fault("anything") is not None

    def test_point_substring_match(self):
        inj = FaultInjector(FaultPlan((FaultSpec("crash_point", point="deadbeef", times=None),)))
        assert inj.point_fault("key-deadbeef-1", "label") is not None
        assert inj.point_fault("other", "label") is None

    def test_message_fault(self):
        inj = FaultInjector(FaultPlan((FaultSpec("drop_message", rank=0, message=2),)))
        assert inj.message_fault(0, 0) is None
        assert inj.message_fault(1, 2) is None
        assert inj.message_fault(0, 2) is not None

    def test_probability_deterministic(self):
        plan = FaultPlan(
            (FaultSpec("transient", point="", times=None, probability=0.5),), seed=11
        )
        fires = [FaultInjector(plan).point_fault("x") is not None for _ in range(1)]
        pattern = [
            [inj.point_fault("x") is not None for _ in range(20)]
            for inj in (FaultInjector(plan), FaultInjector(plan))
        ]
        assert pattern[0] == pattern[1]  # same seed, same occasions, same coins
        assert any(pattern[0]) and not all(pattern[0])
        assert fires is not None

    def test_fire_counts_and_metric(self):
        reg = get_registry()
        before = reg.counter("faults.injected").total()
        inj = FaultInjector(FaultPlan((FaultSpec("transient", point="", times=2),)))
        spec = inj.point_fault("x")
        inj.fire(spec)
        assert inj.fired() == 1
        assert reg.counter("faults.injected").total() == before + 1

    def test_use_metrics_false_is_silent(self):
        reg = get_registry()
        before = reg.counter("faults.injected").total()
        inj = FaultInjector(
            FaultPlan((FaultSpec("transient", point="", times=2),)), use_metrics=False
        )
        inj.fire(inj.point_fault("x"))
        assert reg.counter("faults.injected").total() == before

    def test_raise_fault(self):
        inj = FaultInjector(FaultPlan((FaultSpec("crash_point", point="", note="kaboom"),)))
        with pytest.raises(FaultInjectedError, match="kaboom"):
            inj.raise_fault(inj.point_fault("x"), where="test")


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)

    def test_exponential_capped(self):
        pol = RetryPolicy(max_retries=6, base_delay=0.1, multiplier=2.0,
                          max_delay=0.5, jitter=0.0)
        assert pol.delays() == [0.1, 0.2, 0.4, 0.5, 0.5, 0.5]

    def test_jitter_bounded_and_deterministic(self):
        pol = RetryPolicy(max_retries=4, base_delay=0.1, jitter=0.25, seed=3)
        delays = pol.delays()
        assert delays == RetryPolicy(max_retries=4, base_delay=0.1, jitter=0.25,
                                     seed=3).delays()
        for k, d in enumerate(delays, start=1):
            base = min(pol.max_delay, pol.base_delay * pol.multiplier ** (k - 1))
            assert base <= d <= base * 1.25

    def test_different_seed_different_jitter(self):
        a = RetryPolicy(max_retries=3, seed=1).delays()
        b = RetryPolicy(max_retries=3, seed=2).delays()
        assert a != b

    def test_roundtrip(self):
        pol = RetryPolicy(max_retries=5, base_delay=0.2, seed=9)
        assert RetryPolicy.from_dict(pol.to_dict()) == pol


class TestCallWithRetry:
    def test_success_first_try(self):
        slept = []
        assert call_with_retry(lambda: 42, RetryPolicy(), sleep=slept.append) == 42
        assert slept == []

    def test_transient_failure_recovers(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ValueError("boom")
            return "ok"

        pol = RetryPolicy(max_retries=3, base_delay=0.1, jitter=0.0)
        slept = []  # fake clock: record the schedule instead of sleeping
        assert call_with_retry(flaky, pol, sleep=slept.append) == "ok"
        assert slept == [0.1, 0.2]

    def test_gave_up_raises_retry_error(self):
        reg = get_registry()
        before = reg.counter("retry.gave_up").value(op="unit")

        def always():
            raise KeyError("nope")

        with pytest.raises(RetryError) as err:
            call_with_retry(always, RetryPolicy(max_retries=2, base_delay=0.0),
                            op="unit", sleep=lambda s: None)
        assert err.value.attempts == 3
        assert isinstance(err.value.last, KeyError)
        assert reg.counter("retry.gave_up").value(op="unit") == before + 1

    def test_attempts_counted(self):
        reg = get_registry()
        before = reg.counter("retry.attempts").value(op="unit2")
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise ValueError("boom")
            return 1

        call_with_retry(flaky, RetryPolicy(max_retries=2, base_delay=0.0),
                        op="unit2", sleep=lambda s: None)
        assert reg.counter("retry.attempts").value(op="unit2") == before + 1

    def test_retry_on_filters_exceptions(self):
        with pytest.raises(ZeroDivisionError):  # not retried, propagates raw
            call_with_retry(lambda: 1 / 0, RetryPolicy(max_retries=5),
                            retry_on=(KeyError,), sleep=lambda s: None)

    def test_on_retry_callback(self):
        seen = []
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise ValueError("boom")
            return 1

        call_with_retry(flaky, RetryPolicy(max_retries=1, base_delay=0.0),
                        sleep=lambda s: None,
                        on_retry=lambda attempt, exc: seen.append((attempt, type(exc))))
        assert seen == [(1, ValueError)]

    def test_decorator(self):
        calls = []

        @retry(RetryPolicy(max_retries=1, base_delay=0.0), op="deco")
        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise ValueError("boom")
            return "done"

        assert flaky() == "done"


class TestRollingDeadline:
    def test_refresh_extends_the_window(self):
        now = [0.0]
        dl = _RollingDeadline(10.0, clock=lambda: now[0])
        now[0] = 9.0
        assert not dl.expired()
        dl.refresh()  # a result arrived: the next wait gets the full window
        now[0] = 18.0
        assert not dl.expired()
        now[0] = 19.1
        assert dl.expired()

    def test_without_refresh_expires(self):
        now = [0.0]
        dl = _RollingDeadline(5.0, clock=lambda: now[0])
        now[0] = 5.1
        assert dl.expired()
        assert dl.remaining() == 0.0
