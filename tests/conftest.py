"""Shared fixtures for the test suite.

Also registers the hypothesis example-count profiles: tests that omit
``max_examples`` (the scheduler property battery) scale with
``REPRO_HYPOTHESIS_PROFILE`` — ``quick`` for PR CI, ``full`` for main,
``default`` (hypothesis' 100) otherwise.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.geostats.covariance import Matern
from repro.geostats.generator import SyntheticField, build_tiled_covariance
from repro.geostats.locations import generate_locations
from repro.tiles.tilematrix import TiledSymmetricMatrix

settings.register_profile("quick", max_examples=15, deadline=None)
settings.register_profile("default", deadline=None)
settings.register_profile("full", max_examples=300, deadline=None)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def random_spd(n: int, rng: np.random.Generator, *, cond_boost: float = 1.0) -> np.ndarray:
    """A well-conditioned random SPD matrix."""
    a = rng.standard_normal((n, n))
    return a @ a.T + cond_boost * n * np.eye(n)


@pytest.fixture
def spd_96(rng) -> np.ndarray:
    return random_spd(96, rng)


@pytest.fixture
def tiled_96(spd_96) -> TiledSymmetricMatrix:
    return TiledSymmetricMatrix.from_dense(spd_96, 16)


@pytest.fixture
def matern_cov_160() -> TiledSymmetricMatrix:
    """A 160×160 Matérn covariance with genuine off-diagonal decay."""
    locs = generate_locations(160, 2, seed=5)
    return build_tiled_covariance(locs, Matern(dim=2), (1.0, 0.05, 0.5), 20)


@pytest.fixture
def small_field() -> SyntheticField:
    return SyntheticField.matern_2d(n=144, variance=1.0, range_=0.1, smoothness=0.5, seed=3)
