"""Unit and property tests for synthetic location generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geostats.locations import (
    cross_distances,
    generate_locations,
    morton_order,
    pairwise_distances,
)


class TestGenerate:
    @pytest.mark.parametrize("n,dim", [(100, 2), (64, 2), (125, 3), (7, 2), (1, 2)])
    def test_shape_and_bounds(self, n, dim):
        locs = generate_locations(n, dim, seed=0)
        assert locs.shape == (n, dim)
        assert np.all(locs >= 0.0) and np.all(locs <= 1.0)

    def test_deterministic(self):
        a = generate_locations(50, 2, seed=9)
        b = generate_locations(50, 2, seed=9)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = generate_locations(50, 2, seed=1)
        b = generate_locations(50, 2, seed=2)
        assert not np.array_equal(a, b)

    def test_space_filling(self):
        """The jittered grid covers the square (no empty quadrant)."""
        locs = generate_locations(400, 2, seed=0)
        for qx in (0, 1):
            for qy in (0, 1):
                mask = (
                    (locs[:, 0] >= 0.5 * qx) & (locs[:, 0] < 0.5 * (qx + 1))
                    & (locs[:, 1] >= 0.5 * qy) & (locs[:, 1] < 0.5 * (qy + 1))
                )
                assert mask.sum() > 50

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_locations(0)
        with pytest.raises(ValueError):
            generate_locations(10, dim=4)


class TestMorton:
    def test_is_permutation(self):
        locs = np.random.default_rng(0).random((100, 2))
        order = morton_order(locs)
        assert sorted(order) == list(range(100))

    def test_locality(self):
        """Morton ordering keeps index-neighbours spatially close on average."""
        rng = np.random.default_rng(1)
        locs = rng.random((400, 2))
        ordered = locs[morton_order(locs)]
        d_sorted = np.linalg.norm(np.diff(ordered, axis=0), axis=1).mean()
        d_random = np.linalg.norm(np.diff(locs, axis=0), axis=1).mean()
        assert d_sorted < 0.5 * d_random

    def test_3d(self):
        locs = np.random.default_rng(2).random((64, 3))
        order = morton_order(locs)
        assert sorted(order) == list(range(64))

    def test_validates_shape(self):
        with pytest.raises(ValueError):
            morton_order(np.zeros(10))

    def test_sort_flag(self):
        unsorted = generate_locations(100, 2, seed=3, sort=False)
        sorted_ = generate_locations(100, 2, seed=3, sort=True)
        assert np.array_equal(np.sort(unsorted.ravel()), np.sort(sorted_.ravel()))


class TestDistances:
    def test_pairwise_properties(self):
        locs = generate_locations(30, 2, seed=0)
        d = pairwise_distances(locs)
        assert d.shape == (30, 30)
        assert np.allclose(np.diag(d), 0.0)
        assert np.allclose(d, d.T)
        assert np.all(d >= 0.0)

    def test_cross_matches_pairwise(self):
        locs = generate_locations(20, 2, seed=0)
        d = cross_distances(locs, locs)
        assert np.allclose(d, pairwise_distances(locs))

    @given(st.integers(2, 20), st.integers(0, 10**6))
    @settings(max_examples=30)
    def test_triangle_inequality(self, n, seed):
        rng = np.random.default_rng(seed)
        locs = rng.random((n, 2))
        d = pairwise_distances(locs)
        i, j, k = rng.integers(0, n, size=3)
        assert d[i, k] <= d[i, j] + d[j, k] + 1e-12
