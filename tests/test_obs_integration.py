"""End-to-end telemetry: instrumented hot paths, CLI capture, report."""

import json

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.geostats import SyntheticField, fit_mle
from repro.geostats.optimizer import maximize_bounded, nelder_mead_bounded


@pytest.fixture(autouse=True)
def clean_state():
    assert obs.get_event_log() is None
    yield
    obs.set_event_log(None)
    obs.reset_metrics()


class TestSimulatorMetrics:
    def test_live_metrics_populated(self):
        from repro.core import two_precision_map
        from repro.core.solver import simulate_cholesky
        from repro.perfmodel.gpus import V100
        from repro.precision import Precision
        from repro.runtime import Platform

        obs.reset_metrics()
        rep = simulate_cholesky(8 * 512, 512, two_precision_map(8, Precision.FP16),
                                Platform.single_gpu(V100))
        reg = obs.get_registry()
        assert reg.counter("sim.tasks").value() == rep.stats.n_tasks
        assert reg.counter("sim.conversions").value() == rep.stats.n_conversions
        assert reg.counter("sim.busy_seconds").value(engine="compute") > 0.0
        assert reg.counter("sim.bytes_moved").total() >= rep.stats.h2d_bytes
        assert reg.gauge("sim.makespan_seconds").value() == pytest.approx(rep.makespan)
        assert reg.timer("span.duration_seconds").count(span="sim.run") == 1


class TestExecutorSpans:
    def test_sequential_executor_emits_task_spans(self, tmp_path, tiled_96):
        from repro.core import MPCholeskySolver, MPConfig

        solver = MPCholeskySolver(MPConfig(accuracy=1e-6, tile_size=16))
        with obs.event_log(tmp_path / "run.jsonl"):
            solver.factorize_via_runtime(tiled_96)
        events = obs.read_events(tmp_path / "run.jsonl")
        tasks = [e for e in events if e["type"] == "span" and e["span"].endswith("/task")]
        assert tasks, "expected per-task spans"
        kinds = {e["attrs"]["kind"] for e in tasks}
        assert {"POTRF", "TRSM", "SYRK", "GEMM"} <= kinds
        assert all(e["span"].startswith("executor.sequential/") for e in tasks)

    def test_parallel_executor_emits_task_spans(self, tmp_path, tiled_96):
        from repro.core import MPCholeskySolver, MPConfig
        from repro.runtime.parallel_executor import execute_numeric_parallel

        solver = MPCholeskySolver(MPConfig(accuracy=1e-6, tile_size=16))
        plan = solver.plan(tiled_96)
        dag = solver._dag(tiled_96.n, tiled_96.nb, plan, None)
        with obs.event_log(tmp_path / "run.jsonl"):
            execute_numeric_parallel(dag.graph, tiled_96, n_threads=2)
        events = obs.read_events(tmp_path / "run.jsonl")
        task_spans = [e for e in events if e["type"] == "span" and e["span"] == "task"]
        outer = [e for e in events if e["type"] == "span"
                 and e["span"] == "executor.parallel"]
        assert task_spans and outer
        assert task_spans[0]["attrs"]["duration_seconds"] >= 0.0


class TestOptimizerCallback:
    def test_on_iteration_called_each_iteration(self):
        seen = []

        def quad(x):
            return float((x[0] - 0.5) ** 2)

        res = nelder_mead_bounded(
            quad, [0.1], [(0.0, 1.0)], max_evals=60,
            on_iteration=lambda k, x, fx: seen.append((k, x.copy(), fx)),
        )
        assert len(seen) == res.n_iters
        assert [k for k, _x, _f in seen] == list(range(1, res.n_iters + 1))
        # best-so-far objective values are non-increasing
        fs = [f for _k, _x, f in seen]
        assert all(b <= a + 1e-15 for a, b in zip(fs, fs[1:]))

    def test_default_none_keeps_existing_behaviour(self):
        def quad(x):
            return float((x[0] - 0.5) ** 2)

        a = nelder_mead_bounded(quad, [0.1], [(0.0, 1.0)], max_evals=60)
        b = nelder_mead_bounded(quad, [0.1], [(0.0, 1.0)], max_evals=60,
                                on_iteration=lambda *args: None)
        assert a.n_evals == b.n_evals
        assert a.fun == b.fun

    def test_maximize_flips_sign_for_callback(self):
        seen = []
        maximize_bounded(
            lambda x: -float((x[0] - 0.5) ** 2), [0.1], [(0.0, 1.0)], max_evals=40,
            on_iteration=lambda k, x, fx: seen.append(fx),
        )
        # callback sees the maximisation objective (≤ 0, approaching 0)
        assert all(f <= 1e-12 for f in seen)
        assert seen[-1] >= seen[0]


class TestMLEEvents:
    def test_fit_emits_per_iteration_jsonl(self, tmp_path):
        field = SyntheticField.matern_2d(n=64, variance=1.0, range_=0.1,
                                         smoothness=0.5, seed=3)
        ds = field.sample()
        with obs.event_log(tmp_path / "mle.jsonl", run_id="mle-test"):
            res = fit_mle(ds, accuracy=1e-4, max_evals=40, xtol=1e-5, restarts=0)
        events = obs.read_events(tmp_path / "mle.jsonl")
        iters = [e for e in events if e["type"] == "mle.iteration"]
        assert iters, "expected mle.iteration events"
        ks = [e["attrs"]["k"] for e in iters]
        assert ks == list(range(1, len(ks) + 1))
        last = iters[-1]["attrs"]
        assert len(last["theta"]) == 3
        assert last["n_evals"] > 0
        assert last["eval_seconds"] > 0.0
        assert all(e["span"] == "mle.fit" for e in iters)
        # the fit span closes with the result attached
        fit_spans = [e for e in events if e["type"] == "span" and e["span"] == "mle.fit"]
        assert fit_spans and fit_spans[-1]["attrs"]["loglik"] == pytest.approx(res.loglik)
        # planning decision logs rode along
        assert any(e["type"] == "precision_map.built" for e in events)
        assert any(e["type"] == "comm_map.built" for e in events)

    def test_precision_decision_log_contents(self, tmp_path):
        from repro.core import build_precision_map

        norms = np.array([[10.0, 1e-7, 1e-9],
                          [1e-7, 10.0, 1e-7],
                          [1e-9, 1e-7, 10.0]])
        with obs.event_log(tmp_path / "plan.jsonl"):
            build_precision_map(norms, 1e-4)
        events = obs.read_events(tmp_path / "plan.jsonl")
        built = [e for e in events if e["type"] == "precision_map.built"]
        assert len(built) == 1
        attrs = built[0]["attrs"]
        assert attrs["nt"] == 3
        assert attrs["accuracy"] == 1e-4
        assert "FP64" in attrs["fractions"]
        tiles = {tuple(t["tile"]): t for t in attrs["tiles"]}
        assert tiles[(0, 0)]["kernel"] == "FP64"
        assert tiles[(2, 0)]["kernel"] != "FP64"
        assert "rel_norm" in tiles[(1, 0)]


class TestCliTelemetry:
    def test_simulate_capture_and_report(self, tmp_path, capsys):
        trace = tmp_path / "run.json"
        metrics = tmp_path / "metrics.json"
        events = tmp_path / "run.jsonl"
        assert main(["simulate", "--n", "4096", "--nb", "512",
                     "--trace-out", str(trace), "--metrics-out", str(metrics),
                     "--events-out", str(events), "--run-id", "cli-test"]) == 0
        capsys.readouterr()

        payload = json.loads(trace.read_text())
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert {"X", "C", "M"} <= phases  # slices, counters, metadata

        doc = json.loads(metrics.read_text())
        assert doc["manifest"]["run_id"] == "cli-test"
        assert doc["manifest"]["command"] == "simulate"
        assert doc["stats"]["n_tasks"] > 0
        assert doc["trace"]["n_events"] > 0
        assert "sim.tasks" in doc["metrics"]

        recs = obs.read_events(events)
        assert any(e["type"] == "sim.complete" for e in recs)
        assert all(e["run_id"] == "cli-test" for e in recs)

        assert main(["report", "--metrics", str(metrics), "--events", str(events),
                     "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "cli-test" in out
        assert "sim.busy_seconds" in out
        assert "counter tracks" in out
        assert "sim.complete" in out

    def test_mle_events_out_flag(self, tmp_path, capsys):
        events = tmp_path / "mle.jsonl"
        assert main(["mle", "--model", "2d-matern", "--n", "64",
                     "--accuracy", "1e-4", "--events-out", str(events)]) == 0
        capsys.readouterr()
        recs = obs.read_events(events)
        assert any(e["type"] == "mle.iteration" for e in recs)
        assert main(["report", "--events", str(events)]) == 0
        out = capsys.readouterr().out
        assert "mle.iteration" in out
        assert "last MLE iteration" in out

    def test_report_without_inputs_errors(self, capsys):
        assert main(["report"]) == 2
        assert "nothing to do" in capsys.readouterr().err

    def test_simulate_without_flags_unchanged(self, capsys):
        assert main(["simulate", "--n", "4096", "--nb", "512"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "Tflop/s" in out
