"""Property tests for the histogram reservoir's deterministic decimation.

``_HistSeries`` keeps a bounded systematic sample of the stream: at the
cap it drops every other kept sample and doubles its stride.  Two
invariants matter across the cap boundary: the reservoir never exceeds
``max_samples``, and nearest-rank quantiles stay close to the exact
stream quantile — within a rank window of a few strides, since the
retained samples are evenly spaced through the stream.
"""

import bisect
import math

from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import Histogram

_values = st.lists(
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False,
              allow_infinity=False, width=64),
    min_size=1,
    max_size=500,
)
_caps = st.integers(min_value=2, max_value=64)


def _series(hist: Histogram):
    (series,) = hist._series.values()
    return series


class TestReservoirBound:
    @given(values=_values, cap=_caps)
    def test_samples_never_exceed_cap(self, values, cap):
        hist = Histogram("h", max_samples=cap)
        for v in values:
            hist.observe(v)
            series = _series(hist)
            assert len(series.samples) <= hist.max_samples
            # stride stays a power of two — the decimation invariant
            assert series.stride & (series.stride - 1) == 0

    @given(values=_values, cap=_caps)
    def test_exact_running_stats_survive_decimation(self, values, cap):
        hist = Histogram("h", max_samples=cap)
        for v in values:
            hist.observe(v)
        assert hist.count() == len(values)
        assert hist.sum() == sum(values)
        series = _series(hist)
        assert series.min == min(values)
        assert series.max == max(values)


class TestQuantileAccuracy:
    @given(values=_values, cap=_caps,
           q=st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_within_stride_window_of_exact(self, values, q, cap):
        """On a sorted stream, arrival order == value order, so the
        systematic reservoir's nearest-rank quantile must land within a
        few strides of the exact stream rank — including after the cap
        boundary has been crossed (several decimations)."""
        ordered = sorted(values)
        hist = Histogram("h", max_samples=cap)
        for v in ordered:
            hist.observe(v)
        series = _series(hist)
        est = hist.quantile(q)
        assert not math.isnan(est)
        assert ordered[0] <= est <= ordered[-1]

        m = len(ordered)
        exact_idx = max(0, min(m - 1, math.ceil(q * m) - 1))
        # the estimate is a real stream element; its rank interval
        # (duplicates give an interval) must overlap the exact rank to
        # within the reservoir's spacing
        lo = bisect.bisect_left(ordered, est)
        hi = bisect.bisect_right(ordered, est) - 1
        slack = 4 * series.stride
        assert lo - slack <= exact_idx <= hi + slack

    def test_cap_boundary_deterministic(self):
        """Walk a monotone stream straight through two decimations."""
        hist = Histogram("h", max_samples=8)
        for v in range(100):
            hist.observe(float(v))
        series = _series(hist)
        assert len(series.samples) <= 8
        assert series.stride == 16  # 100 observations through cap 8
        assert hist.count() == 100
        # median of 0..99 from the decimated reservoir stays near 49.5
        assert abs(hist.quantile(0.5) - 49.5) <= 4 * series.stride
        assert hist.quantile(0.0) == min(series.samples)
        assert hist.quantile(1.0) == max(series.samples)
