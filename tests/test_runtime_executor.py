"""Tests for the numeric DAG executor: DAG ≡ sequential algorithm."""

import numpy as np
import pytest

from repro.core.cholesky import mp_cholesky
from repro.core.config import ConversionStrategy
from repro.core.dag_cholesky import build_cholesky_dag
from repro.core.precision_map import build_precision_map, two_precision_map, uniform_map
from repro.precision import Precision
from repro.runtime.executor import execute_numeric
from repro.tiles.distribution import ProcessGrid
from repro.tiles.norms import tile_norms
from repro.tiles.tilematrix import TiledSymmetricMatrix


class TestEquivalence:
    """The unrolled PTG computes bit-identically to Algorithm 1."""

    @pytest.mark.parametrize("prec", [Precision.FP64, Precision.FP32,
                                      Precision.FP16_32, Precision.FP16])
    def test_extreme_maps(self, tiled_96, prec):
        kmap = (uniform_map(6, prec) if prec == Precision.FP64
                else two_precision_map(6, prec))
        ref = mp_cholesky(tiled_96, kmap).factor.lower_dense()
        dag = build_cholesky_dag(96, 16, kmap)
        out = execute_numeric(dag.graph, tiled_96).lower_dense()
        assert np.array_equal(out, ref)

    @pytest.mark.parametrize("strategy", [ConversionStrategy.AUTO, ConversionStrategy.TTC])
    def test_adaptive_map_strategies(self, matern_cov_160, strategy):
        dense = matern_cov_160.to_dense() + 0.01 * np.eye(160)
        mat = TiledSymmetricMatrix.from_dense(dense, 20)
        kmap = build_precision_map(tile_norms(mat), 1e-4)
        ref = mp_cholesky(mat, kmap, strategy=strategy).factor.lower_dense()
        dag = build_cholesky_dag(160, 20, kmap, strategy=strategy)
        out = execute_numeric(dag.graph, mat).lower_dense()
        assert np.array_equal(out, ref)

    def test_grid_does_not_change_numerics(self, tiled_96):
        """Data distribution is a performance concern, never a numeric one."""
        kmap = two_precision_map(6, Precision.FP16)
        base = execute_numeric(build_cholesky_dag(96, 16, kmap).graph, tiled_96)
        for grid in (ProcessGrid(2, 2), ProcessGrid(2, 3), ProcessGrid(1, 4)):
            dag = build_cholesky_dag(96, 16, kmap, grid=grid)
            out = execute_numeric(dag.graph, tiled_96)
            assert np.array_equal(out.lower_dense(), base.lower_dense())

    def test_input_matrix_unmodified(self, tiled_96):
        before = tiled_96.to_dense()
        dag = build_cholesky_dag(96, 16, uniform_map(6, Precision.FP64))
        execute_numeric(dag.graph, tiled_96)
        assert np.array_equal(tiled_96.to_dense(), before)

    def test_ragged_sizes(self, rng):
        a = rng.standard_normal((52, 52))
        spd = a @ a.T + 52 * np.eye(52)
        mat = TiledSymmetricMatrix.from_dense(spd, 16)
        kmap = two_precision_map(mat.nt, Precision.FP16)
        ref = mp_cholesky(mat, kmap).factor.lower_dense()
        dag = build_cholesky_dag(52, 16, kmap)
        out = execute_numeric(dag.graph, mat).lower_dense()
        assert np.array_equal(out, ref)

    def test_unknown_kind_rejected(self, tiled_96):
        dag = build_cholesky_dag(96, 16, uniform_map(6, Precision.FP64))
        dag.graph.tasks[0].kind = "FROBNICATE"
        with pytest.raises(ValueError, match="unknown task kind"):
            execute_numeric(dag.graph, tiled_96)
