"""Tests for the sweep/campaign engine (grid, cache, pool, CLI)."""

import json

import pytest

from repro.cli import main
from repro.sweep import KERNEL_CONFIGS, RunSpec, SweepGrid, execute_spec, run_sweep

TINY = dict(n=1024, nb=256)  # nt=4 — fast enough for unit tests


class TestRunSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            RunSpec(n=0, nb=256)
        with pytest.raises(ValueError):
            RunSpec(n=1024, nb=256, config="FP8")
        with pytest.raises(ValueError):
            RunSpec(n=1024, nb=256, strategy="both")
        with pytest.raises(ValueError):
            RunSpec(n=1024, nb=256, n_nodes=0)

    def test_nt_ceil_division(self):
        assert RunSpec(n=1024, nb=256).nt == 4
        assert RunSpec(n=1025, nb=256).nt == 5

    def test_roundtrip(self):
        spec = RunSpec(**TINY, config="adaptive", accuracy=1e-6, seed=3)
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_cache_key_deterministic(self):
        a = RunSpec(**TINY, config="FP64/FP16", seed=1)
        b = RunSpec(**TINY, config="FP64/FP16", seed=1)
        assert a.cache_key() == b.cache_key()
        assert len(a.cache_key()) == 16
        int(a.cache_key(), 16)  # hex

    def test_cache_key_sensitive_to_every_field(self):
        base = RunSpec(**TINY)
        variants = [
            RunSpec(n=2048, nb=256),
            RunSpec(n=1024, nb=512),
            RunSpec(**TINY, config="FP32"),
            RunSpec(**TINY, strategy="ttc"),
            RunSpec(**TINY, gpu="A100"),
            RunSpec(**TINY, gpus_per_node=2),
            RunSpec(**TINY, n_nodes=2),
            RunSpec(**TINY, app="3d-exponential"),
            RunSpec(**TINY, accuracy=1e-4),
            RunSpec(**TINY, seed=7),
            RunSpec(**TINY, policy="critical-path"),
            RunSpec(**TINY, enforce_memory=False),
        ]
        keys = {base.cache_key()} | {v.cache_key() for v in variants}
        assert len(keys) == len(variants) + 1


class TestSweepGrid:
    def test_from_axes_lifts_scalars(self):
        grid = SweepGrid.from_axes(n=1024, nb=[256, 512], config="FP32")
        assert grid.n == (1024,) and grid.nb == (256, 512)
        assert len(grid) == 2

    def test_expansion_order_and_len(self):
        grid = SweepGrid.from_axes(
            n=[1024, 2048], nb=256, config=["FP64", "FP32"], seed=[0, 1]
        )
        specs = grid.expand()
        assert len(specs) == len(grid) == 8
        # documented field order: n varies slowest, seed fastest
        assert [s.n for s in specs[:4]] == [1024] * 4
        assert [s.seed for s in specs[:2]] == [0, 1]
        assert specs[0].config == specs[1].config == "FP64"

    def test_all_configs_known(self):
        for config in KERNEL_CONFIGS:
            SweepGrid.from_axes(n=1024, nb=256, config=config)  # no raise


class TestExecuteSpec:
    def test_fixed_config(self):
        result = execute_spec(RunSpec(**TINY, config="FP64/FP16_32").to_dict())
        assert result["n_tasks"] == 20  # nt=4 tile Cholesky
        assert result["makespan_seconds"] > 0
        assert result["plan_seconds"] > 0 and result["sim_seconds"] > 0
        assert 0.0 <= result["stc_fraction"] <= 1.0

    def test_adaptive_config(self):
        result = execute_spec(
            RunSpec(**TINY, config="adaptive", accuracy=1e-4, seed=1).to_dict()
        )
        assert result["n_tasks"] == 20
        assert "FP64" in result["tile_fractions"]

    def test_picklable_payload(self):
        import pickle

        payload = RunSpec(**TINY).to_dict()
        assert pickle.loads(pickle.dumps(payload)) == payload


class TestRunSweep:
    def grid(self, **kw):
        axes = dict(n=1024, nb=256, config=["FP64", "FP64/FP16"], strategy=["auto", "ttc"])
        axes.update(kw)
        return SweepGrid.from_axes(**axes)

    def test_miss_then_hit(self, tmp_path):
        first = run_sweep(self.grid(), cache_dir=tmp_path)
        assert first.n_runs == 4
        assert first.n_cache_hits == 0 and first.n_cache_misses == 4
        second = run_sweep(self.grid(), cache_dir=tmp_path)
        assert second.n_cache_hits == 4 and second.cache_hit_fraction == 1.0
        for a, b in zip(first.runs, second.runs):
            assert a.key == b.key
            assert a.result == b.result

    def test_force_reexecutes(self, tmp_path):
        run_sweep(self.grid(), cache_dir=tmp_path)
        forced = run_sweep(self.grid(), cache_dir=tmp_path, force=True)
        assert forced.n_cache_hits == 0

    def test_duplicate_specs_run_once(self, tmp_path):
        spec = RunSpec(**TINY)
        result = run_sweep([spec, spec, spec], cache_dir=tmp_path)
        assert result.n_runs == 3
        assert result.n_cache_misses == 1  # one execution, two shared
        assert result.runs[1].result == result.runs[0].result

    def test_parallel_matches_sequential(self, tmp_path):
        seq = run_sweep(self.grid(), cache_dir=tmp_path / "a")
        par = run_sweep(self.grid(), cache_dir=tmp_path / "b", workers=2)
        assert [r.key for r in seq.runs] == [r.key for r in par.runs]
        for a, b in zip(seq.runs, par.runs):
            assert a.result["makespan_seconds"] == b.result["makespan_seconds"]
            assert a.result["tflops"] == b.result["tflops"]

    def test_cache_entry_has_manifest(self, tmp_path):
        result = run_sweep([RunSpec(**TINY)], cache_dir=tmp_path)
        doc = json.loads((tmp_path / f"{result.runs[0].key}.json").read_text())
        assert doc["spec"] == RunSpec(**TINY).to_dict()
        assert doc["manifest"]["run_id"] == result.runs[0].key

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        spec = RunSpec(**TINY)
        run_sweep([spec], cache_dir=tmp_path)
        (tmp_path / f"{spec.cache_key()}.json").write_text("{not json")
        again = run_sweep([spec], cache_dir=tmp_path)
        assert again.n_cache_misses == 1

    def test_table_and_bench_json(self, tmp_path):
        result = run_sweep(self.grid(name="unit"), cache_dir=tmp_path / "c", name="unit")
        table = result.table()
        assert "tflops" in table and "miss" in table
        path = result.write_bench_json(tmp_path)
        assert path.name == "BENCH_unit.json"
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.bench/1"
        assert doc["n_runs"] == 4
        assert doc["axes"]["config"] == ["FP64", "FP64/FP16"]
        assert doc["aggregates"]["best_tflops"] > 0
        assert len(doc["runs"]) == 4


class TestSweepCli:
    def test_sweep_command_hits_on_rerun(self, tmp_path, capsys):
        argv = [
            "sweep", "--n", "1024", "--nb", "256",
            "--config", "FP64", "--config", "FP64/FP16",
            "--cache-dir", str(tmp_path / "cache"),
            "--bench-out", str(tmp_path),
            "--name", "cli-smoke",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache: 0/2 hits (0.0%)" in out
        assert (tmp_path / "BENCH_cli-smoke.json").exists()

        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache: 2/2 hits (100.0%)" in out


class TestPolicyAxis:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduling policy|unknown policy"):
            RunSpec(**TINY, policy="random")

    def test_policy_in_label_when_non_default(self):
        assert "[critical-path]" in RunSpec(**TINY, policy="critical-path").label
        assert "[" not in RunSpec(**TINY).label

    def test_policy_axis_expands(self):
        grid = SweepGrid.from_axes(**TINY, policy=["panel-first", "fifo"])
        specs = grid.expand()
        assert len(specs) == 2
        assert [s.policy for s in specs] == ["panel-first", "fifo"]
        assert grid.axes_dict()["policy"] == ["panel-first", "fifo"]

    def test_execute_spec_honours_policy(self):
        base = execute_spec(RunSpec(n=2048, nb=128, config="FP64/FP16_32").to_dict())
        cp = execute_spec(
            RunSpec(n=2048, nb=128, config="FP64/FP16_32", policy="critical-path").to_dict()
        )
        assert base["policy"] == "panel-first" and cp["policy"] == "critical-path"
        assert cp["makespan_seconds"] != base["makespan_seconds"]

    def test_policy_column_in_table(self, tmp_path):
        result = run_sweep(
            SweepGrid.from_axes(**TINY, policy=["panel-first", "critical-path"]),
            cache_dir=tmp_path,
        )
        table = result.table()
        assert "policy" in table and "critical-path" in table


class TestSweepProgress:
    """Periodic completed/total progress from run_sweep (ISSUE 9)."""

    def grid(self):
        axes = dict(n=1024, nb=256, config=["FP64", "FP64/FP16"], strategy=["auto", "ttc"])
        return SweepGrid.from_axes(**axes)

    def test_progress_lines_on_stderr(self, tmp_path, capsys):
        run_sweep(self.grid(), cache_dir=tmp_path, progress_seconds=0)
        err = capsys.readouterr().err
        lines = [ln for ln in err.splitlines() if "points" in ln]
        assert lines, f"no progress lines in stderr: {err!r}"
        assert any("4/4 points" in ln for ln in lines)
        # rerun: all four points served from cache, reported up front
        run_sweep(self.grid(), cache_dir=tmp_path, progress_seconds=0)
        err = capsys.readouterr().err
        assert any("4 cached" in ln for ln in err.splitlines())

    def test_silent_when_disabled(self, tmp_path, capsys):
        run_sweep(self.grid(), cache_dir=tmp_path, progress_seconds=None)
        assert "points" not in capsys.readouterr().err

    def test_progress_events_and_campaign_gauges(self, tmp_path):
        import json

        from repro.obs import event_log
        from repro.obs.live import LivePlane

        plane = LivePlane(interval=30.0)
        from repro.obs.live import install_plane

        events_path = tmp_path / "events.jsonl"
        previous = install_plane(plane)
        try:
            with event_log(events_path, run_id="sp"):
                run_sweep(self.grid(), cache_dir=tmp_path / "c",
                          progress_seconds=0, name="prog")
            snap = plane.progress.snapshot()
        finally:
            install_plane(previous)
        assert snap["done"] == 4 and snap["total"] == 4
        assert snap["complete"]
        assert snap["gauges"]["sweep_cache_hits"] == 0
        records = [json.loads(ln) for ln in events_path.read_text().splitlines() if ln]
        progress = [r for r in records if r["type"] == "sweep.progress"]
        assert progress and progress[-1]["attrs"]["completed"] == 4
