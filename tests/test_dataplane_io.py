"""Dataplane format round-trips, geostats IO edge cases, reorder consistency."""

import numpy as np
import pytest

from repro.geostats import Dataset, build_tiled_covariance, dataplane as dp
from repro.geostats.covariance import Matern, get_model
from repro.geostats.io import (
    load_dataset_csv,
    load_dataset_npz,
    save_dataset_csv,
    save_dataset_npz,
)
from repro.geostats.locations import generate_locations
from repro.obs import get_registry


def _pointset(n=200, dim=2, seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    return dp.PointSet(
        coords=rng.uniform(size=(n, dim)).astype(dtype),
        values=rng.standard_normal(n).astype(dtype),
        meta={"origin": "test"},
    )


# -- PointSet validation --------------------------------------------------


def test_pointset_rejects_nan_coords():
    coords = np.zeros((4, 2))
    coords[2, 1] = np.nan
    with pytest.raises(ValueError, match="non-finite"):
        dp.PointSet(coords=coords, values=np.zeros(4))


def test_pointset_rejects_inf_values():
    with pytest.raises(ValueError, match="non-finite"):
        dp.PointSet(coords=np.zeros((2, 2)), values=np.array([1.0, np.inf]))


def test_pointset_shape_mismatch():
    with pytest.raises(ValueError, match="coordinates but"):
        dp.PointSet(coords=np.zeros((3, 2)), values=np.zeros(2))


# -- round-trips ----------------------------------------------------------


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_npz_roundtrip_preserves_dtype_and_bits(tmp_path, dtype):
    ps = _pointset(dtype=dtype)
    path = dp.write_pointset(str(tmp_path / "pts"), ps, format="npz")
    back = dp.read_pointset(path)
    assert back.coords.dtype == dtype and back.values.dtype == dtype
    assert back.coords.tobytes() == ps.coords.tobytes()
    assert back.values.tobytes() == ps.values.tobytes()
    assert back.crs == ps.crs and back.meta["origin"] == "test"


def test_empty_pointset_roundtrip(tmp_path):
    ps = dp.PointSet(coords=np.zeros((0, 2)), values=np.zeros(0))
    path = dp.write_pointset(str(tmp_path / "empty"), ps, format="npz")
    back = dp.read_pointset(path)
    assert back.n == 0 and back.dim == 2
    chunks = list(dp.stream_pointset(path, 16))
    assert sum(c.n for c in chunks) == 0


def test_single_point_roundtrip(tmp_path):
    ps = dp.PointSet(coords=np.array([[0.25, 0.75]]), values=np.array([1.5]))
    path = dp.write_pointset(str(tmp_path / "one"), ps, format="npz")
    back = dp.read_pointset(path)
    assert back.n == 1 and float(back.values[0]) == 1.5
    assert dp.check_spatial_order(back.coords) == 0.0


def test_stream_pointset_covers_in_order(tmp_path):
    ps = _pointset(n=333)
    path = dp.write_pointset(str(tmp_path / "pts"), ps, format="npz")
    chunks = list(dp.stream_pointset(path, 100))
    assert [c.n for c in chunks] == [100, 100, 100, 33]
    assert np.concatenate([c.coords for c in chunks]).tobytes() == ps.coords.tobytes()


def test_format_env_override_forces_npz(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_DATAPLANE_FORMAT", "npz")
    assert dp.resolve_format() == "npz"
    path = dp.write_pointset(str(tmp_path / "pts"), _pointset())
    assert path.endswith(".npz")


def test_parquet_requested_without_pyarrow():
    if dp.parquet_available():
        pytest.skip("pyarrow installed; the gate cannot be exercised")
    with pytest.raises(RuntimeError, match="pyarrow"):
        dp.resolve_format("parquet")


def test_schema_tag_checked(tmp_path):
    path = str(tmp_path / "bogus.npz")
    np.savez(path, coords=np.zeros((1, 2)), values=np.zeros(1),
             meta=np.frombuffer(b'{"schema": "other/9"}', dtype=np.uint8))
    with pytest.raises(ValueError, match="repro.pointset/1"):
        dp.read_pointset(path)


def test_read_counter_advances(tmp_path):
    ps = _pointset(n=57)
    path = dp.write_pointset(str(tmp_path / "pts"), ps, format="npz")
    counter = get_registry().counter("dataplane.points_read")
    before = counter.value()
    dp.read_pointset(path)
    assert counter.value() == before + 57


def test_csv_pointset_roundtrip(tmp_path):
    ps = _pointset(n=40)
    ds = dp.dataset_from_pointset(ps, "2d-matern")
    csv_path = str(tmp_path / "pts.csv")
    save_dataset_csv(ds, csv_path)
    back = dp.read_pointset_csv(csv_path)
    assert back.n == 40 and back.dim == 2
    assert np.array_equal(back.coords, ps.coords)


# -- geostats/io.py edge cases (satellite) --------------------------------


def test_dataset_rejects_nan_locations():
    locs = generate_locations(16, 2, seed=0)
    locs[3, 0] = np.nan
    with pytest.raises(ValueError, match="non-finite"):
        Dataset(locations=locs, z=np.zeros(16), model=Matern(dim=2))


def test_dataset_rejects_inf_measurements():
    locs = generate_locations(16, 2, seed=0)
    z = np.zeros(16)
    z[5] = -np.inf
    with pytest.raises(ValueError, match="non-finite"):
        Dataset(locations=locs, z=z, model=Matern(dim=2))


def test_empty_dataset_npz_roundtrip(tmp_path):
    ds = Dataset(locations=np.zeros((0, 2)), z=np.zeros(0), model=Matern(dim=2))
    path = save_dataset_npz(ds, str(tmp_path / "empty"))
    back = load_dataset_npz(path)
    assert back.n == 0 and back.model.name == ds.model.name


def test_single_point_dataset_csv_roundtrip(tmp_path):
    ds = Dataset(locations=np.array([[0.5, 0.5]]), z=np.array([2.0]),
                 model=Matern(dim=2))
    path = str(tmp_path / "one.csv")
    save_dataset_csv(ds, path)
    back = load_dataset_csv(path, "2d-matern")
    assert back.n == 1
    assert np.array_equal(back.locations, ds.locations)
    assert np.array_equal(back.z, ds.z)


def test_empty_csv_raises_clear_error(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("x,y,value\n")
    with pytest.raises(ValueError, match="no data rows"):
        load_dataset_csv(str(path), "2d-matern")


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_dataset_npz_roundtrip_preserves_dtype(tmp_path, dtype):
    rng = np.random.default_rng(4)
    locs = rng.uniform(size=(12, 2)).astype(dtype)
    z = rng.standard_normal(12).astype(dtype)
    ds = Dataset(locations=locs, z=z, model=Matern(dim=2))
    assert ds.locations.dtype == dtype  # construction preserves it
    path = save_dataset_npz(ds, str(tmp_path / "ds"))
    back = load_dataset_npz(path)
    assert back.locations.dtype == dtype and back.z.dtype == dtype
    assert back.locations.tobytes() == locs.tobytes()
    assert back.z.tobytes() == z.tobytes()


# -- reorder consistency (satellite: the bit-identical covariance fix) ----


def test_permuted_then_reordered_covariance_bit_identical():
    """A shuffled dataset, spatially reordered, must build the same
    covariance bit-for-bit as one generated already in that order — the
    permutation has to travel with the observations."""
    n, nb = 192, 32
    model = get_model("2d-matern")
    theta = (1.0, 0.1, 0.5)
    locs = generate_locations(n, 2, seed=11, sort=False)
    rng = np.random.default_rng(2)
    z = rng.standard_normal(n)
    direct = Dataset(locations=locs, z=z, model=model)
    direct_ordered = dp.reorder_dataset(direct, "hilbert")

    perm = rng.permutation(n)
    shuffled = dp.permute_dataset(direct, perm)
    recovered = dp.reorder_dataset(shuffled, "hilbert")

    assert recovered.locations.tobytes() == direct_ordered.locations.tobytes()
    assert recovered.z.tobytes() == direct_ordered.z.tobytes()

    a = build_tiled_covariance(direct_ordered.locations, model, theta, nb)
    b = build_tiled_covariance(recovered.locations, model, theta, nb)
    for i in range(a.nt):
        for j in range(i + 1):
            assert a.get(i, j).tobytes() == b.get(i, j).tobytes()


def test_reorder_dataset_keeps_pairs_together():
    n = 128
    locs = generate_locations(n, 2, seed=5, sort=False)
    z = np.arange(n, dtype=np.float64)
    ds = Dataset(locations=locs, z=z, model=Matern(dim=2))
    out = dp.reorder_dataset(ds, "hilbert")
    # every (location, z) pair survives: z values are unique indices
    lookup = {int(v): i for i, v in enumerate(z)}
    for loc, val in zip(out.locations, out.z):
        assert np.array_equal(loc, locs[lookup[int(val)]])


def test_morton_default_unchanged():
    """order_locations(..., 'morton') reproduces generate_locations(sort=True)
    bit-for-bit — the sweep default is backwards-compatible."""
    pts_sorted = generate_locations(256, 2, seed=9, sort=True)
    pts_raw = generate_locations(256, 2, seed=9, sort=False)
    assert dp.order_locations(pts_raw, "morton").tobytes() == pts_sorted.tobytes()
