"""Unit coverage for the byte-bounded LRU used by the simulator's memory
model (:class:`repro.runtime.simulator._Lru`).

The eviction loop has two subtle behaviours the integration tests never
pin down directly: protected entries must be *reinstated in their
original recency order* after a pass skips them, and an over-capacity
cache where everything is protected must terminate without evicting
anything or corrupting its byte ledger.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.simulator import _Lru


def _keys(lru: _Lru) -> list:
    return list(lru.entries)


class TestBasics:
    def test_insert_and_contains(self):
        lru = _Lru(100)
        lru.insert("a", 40, False)
        assert "a" in lru
        assert "b" not in lru
        assert lru.bytes == 40

    def test_reinsert_merges_bytes_and_dirty(self):
        lru = _Lru(100)
        lru.insert("a", 40, True)
        lru.insert("a", 60, False)
        assert lru.bytes == 60
        assert lru.entries["a"] == (60, True)  # dirty bit is sticky

    def test_zero_capacity_means_unbounded(self):
        lru = _Lru(0)
        for i in range(10):
            lru.insert(i, 1 << 30, False)
        assert lru.evict_until_fits(set()) == []
        assert lru.bytes == 10 * (1 << 30)

    def test_within_capacity_is_noop(self):
        lru = _Lru(100)
        lru.insert("a", 50, False)
        assert lru.evict_until_fits(set()) == []
        assert _keys(lru) == ["a"]


class TestEvictionOrder:
    def test_evicts_least_recently_used_first(self):
        lru = _Lru(100)
        lru.insert("a", 50, False)
        lru.insert("b", 50, True)
        lru.insert("c", 50, False)
        evicted = lru.evict_until_fits(set())
        # stops as soon as it fits: only the oldest entry goes
        assert evicted == [("a", 50, False)]
        assert _keys(lru) == ["b", "c"]
        assert lru.bytes == 100

    def test_touch_promotes_to_mru(self):
        lru = _Lru(100)
        lru.insert("a", 50, False)
        lru.insert("b", 50, False)
        lru.touch("a")
        lru.insert("c", 50, False)
        evicted = lru.evict_until_fits(set())
        assert [k for k, _, _ in evicted] == ["b"]
        assert _keys(lru) == ["a", "c"]

    def test_reports_dirty_flag(self):
        lru = _Lru(10)
        lru.insert("d", 20, True)
        ((key, nbytes, dirty),) = lru.evict_until_fits(set())
        assert (key, nbytes, dirty) == ("d", 20, True)


class TestProtectedEntries:
    def test_protected_skipped_and_reinstated_in_order(self):
        lru = _Lru(100)
        for key in ("p1", "v1", "p2", "v2"):
            lru.insert(key, 50, False)
        evicted = lru.evict_until_fits({"p1", "p2"})
        assert [k for k, _, _ in evicted] == ["v1", "v2"]
        # protected survivors keep their relative recency order and sit
        # at the LRU end (they are still the oldest entries)
        assert _keys(lru) == ["p1", "p2"]
        assert lru.bytes == 100

    def test_protected_remain_first_eviction_candidates(self):
        lru = _Lru(100)
        for key in ("p1", "p2", "keep"):
            lru.insert(key, 50, False)
        evicted = lru.evict_until_fits({"p1", "p2"})
        assert [k for k, _, _ in evicted] == ["keep"]
        # force another over-capacity pass with nothing protected: the
        # reinstated entries must go first, in original order
        lru.insert("new", 80, False)
        evicted = lru.evict_until_fits(set())
        assert [k for k, _, _ in evicted] == ["p1", "p2"]

    def test_everything_protected_over_capacity(self):
        lru = _Lru(100)
        for i in range(4):
            lru.insert(i, 50, i % 2 == 0)
        before = dict(lru.entries)
        evicted = lru.evict_until_fits(set(range(4)))  # terminates
        assert evicted == []
        assert lru.bytes == 200  # unchanged, still over capacity
        assert dict(lru.entries) == before
        assert _keys(lru) == [0, 1, 2, 3]

    def test_partial_protection_still_reaches_capacity(self):
        lru = _Lru(100)
        lru.insert("p", 90, False)
        lru.insert("v", 90, False)
        evicted = lru.evict_until_fits({"p"})
        assert [k for k, _, _ in evicted] == ["v"]
        assert lru.bytes == 90


@settings(max_examples=200, deadline=None)
@given(
    entries=st.lists(
        st.tuples(st.integers(0, 15), st.integers(1, 100), st.booleans()),
        min_size=0, max_size=20,
    ),
    capacity=st.integers(0, 500),
    protect=st.sets(st.integers(0, 15), max_size=16),
)
def test_lru_invariants(entries, capacity, protect):
    """Byte ledger stays exact and the loop always terminates."""
    lru = _Lru(capacity)
    for key, nbytes, dirty in entries:
        lru.insert(key, nbytes, dirty)
    evicted = lru.evict_until_fits(protect)
    # ledger: bytes tracks the surviving entries exactly
    assert lru.bytes == sum(nbytes for nbytes, _ in lru.entries.values())
    # no protected key was evicted
    assert all(key not in protect for key, _, _ in evicted)
    # post-condition: within capacity, or only protected entries remain
    if capacity > 0 and lru.bytes > capacity:
        assert set(lru.entries) <= protect
    # evicted + surviving partitions the original key set
    assert {k for k, _, _ in evicted} | set(lru.entries) == {k for k, _, _ in entries}


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
