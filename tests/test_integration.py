"""End-to-end integration tests across subsystems.

These exercise the full pipelines a user runs: synthetic data → precision
planning → mixed-precision factorization → likelihood/MLE/kriging, and
the DAG → simulator → energy/occupancy chain, checking cross-module
consistency rather than unit behaviour.
"""

import math

import numpy as np
import pytest

from repro import MPConfig, MPCholeskySolver
from repro.core import (
    ConversionStrategy,
    build_cholesky_dag,
    build_comm_precision_map,
    build_precision_map,
    simulate_cholesky,
    two_precision_map,
)
from repro.geostats import (
    SyntheticField,
    build_tiled_covariance,
    fit_mle,
    krige,
    log_likelihood,
)
from repro.perfmodel import V100, energy_report, occupancy_trace
from repro.perfmodel.analytic import analytic_cholesky
from repro.precision import Precision
from repro.runtime import Platform, execute_numeric, simulate
from repro.tiles import TiledSymmetricMatrix, tile_norms


class TestFullMLEPipeline:
    def test_mle_then_krige(self):
        field = SyntheticField.matern_2d(n=169, range_=0.12, smoothness=0.5, seed=21)
        ds = field.sample()
        fit = fit_mle(ds, accuracy=1e-9, tile_size=22, max_evals=200, xtol=1e-6)
        assert math.isfinite(fit.loglik)
        grid = np.array([[0.5, 0.5], [0.1, 0.9]])
        pred = krige(ds, grid, fit.theta_hat, config=MPConfig(accuracy=1e-9, tile_size=22))
        assert np.all(np.isfinite(pred.mean))
        assert np.all(pred.variance <= fit.theta_hat[0] + 1e-9)

    def test_accuracy_ladder_consistency(self):
        """The likelihood value ladder matches the factorization error ladder."""
        field = SyntheticField.matern_2d(n=144, range_=0.08, smoothness=0.5, seed=2)
        ds = field.sample()
        theta = field.theta
        exact = log_likelihood(ds, theta, MPConfig(accuracy=1e-15,
                                                   formats=(Precision.FP64,),
                                                   tile_size=18)).value
        prev_dev = -1.0
        for acc in (1e-9, 1e-4):
            val = log_likelihood(ds, theta, MPConfig(accuracy=acc, tile_size=18)).value
            dev = abs(val - exact)
            assert dev >= prev_dev * 0.5  # looser accuracy: no magical improvement
            prev_dev = dev


class TestNumericVsSimulated:
    def test_same_dag_feeds_both_paths(self, tiled_96):
        """One DAG: numeric execution for values, simulation for cost."""
        kmap = build_precision_map(tile_norms(tiled_96), 1e-6)
        dag = build_cholesky_dag(96, 16, kmap)
        factor = execute_numeric(dag.graph, tiled_96)
        platform = Platform.single_gpu(V100)
        report = simulate(dag.graph, platform, 16)
        # numeric result valid
        l = factor.lower_dense()
        rel = np.linalg.norm(l @ l.T - tiled_96.to_dense()) / np.linalg.norm(
            tiled_96.to_dense()
        )
        assert rel < 1e-4
        # simulated cost covers every task
        assert report.stats.n_tasks == len(dag.graph)

    def test_solver_facade_consistency(self, tiled_96):
        solver = MPCholeskySolver(MPConfig(accuracy=1e-6, tile_size=16))
        factor, report = solver.factorize_via_runtime(tiled_96)
        seq = solver.factorize(tiled_96)
        assert np.array_equal(factor.lower_dense(), seq.factor.lower_dense())
        assert report.makespan > 0


class TestTraceConsumers:
    def test_energy_and_occupancy_from_one_run(self):
        nt, nb = 10, 1024
        platform = Platform.single_gpu(V100)
        kmap = two_precision_map(nt, Precision.FP16)
        rep = simulate_cholesky(nt * nb, nb, kmap, platform)
        events = rep.trace.events_of_rank(0)
        er = energy_report(V100, events, rep.makespan, total_flops=rep.stats.total_flops)
        assert er.total_joules > 0
        assert er.gflops_per_watt > 0
        occ = occupancy_trace(events, rep.makespan, n_windows=20)
        assert 0.0 < np.mean([s.occupancy for s in occ]) <= 1.0

    def test_energy_ordering_fp64_vs_mp(self):
        nt, nb = 12, 2048
        platform = Platform.single_gpu(V100)
        out = {}
        for name, prec in (("fp64", Precision.FP64), ("mp", Precision.FP16)):
            from repro.core import uniform_map

            kmap = uniform_map(nt, prec) if prec == Precision.FP64 else two_precision_map(
                nt, prec
            )
            rep = simulate_cholesky(nt * nb, nb, kmap, platform)
            out[name] = energy_report(
                V100, rep.trace.events_of_rank(0), rep.makespan,
                total_flops=rep.stats.total_flops,
            )
        assert out["mp"].total_joules < out["fp64"].total_joules
        assert out["mp"].gflops_per_watt > out["fp64"].gflops_per_watt


class TestAnalyticVsEventSim:
    @pytest.mark.parametrize("prec", [Precision.FP64, Precision.FP16])
    def test_single_gpu_agreement(self, prec):
        from repro.core import uniform_map

        nb, nt = 2048, 12
        plat = Platform.single_gpu(V100)
        kmap = uniform_map(nt, prec) if prec == Precision.FP64 else two_precision_map(nt, prec)
        sim = simulate_cholesky(nt * nb, nb, kmap, plat, record_events=False)
        ana = analytic_cholesky(nt * nb, nb, kmap, plat)
        assert ana.seconds == pytest.approx(sim.makespan, rel=0.3)


class TestGeostatsToPerfBridge:
    def test_covariance_driven_simulation(self):
        """A covariance built by geostats drives the performance stack."""
        field = SyntheticField.matern_2d(n=128, range_=0.1, smoothness=0.5, seed=5)
        cov = build_tiled_covariance(field.locations, field.model, field.theta, 16)
        kmap = build_precision_map(tile_norms(cov), 1e-4)
        cmap = build_comm_precision_map(kmap)
        platform = Platform.single_gpu(V100)
        for strategy in (ConversionStrategy.AUTO, ConversionStrategy.TTC):
            rep = simulate_cholesky(128, 16, kmap, platform, strategy=strategy)
            assert rep.makespan > 0
        assert 0.0 <= cmap.stc_fraction() <= 1.0
