"""Tests for the process-based distributed numeric executor."""

import numpy as np
import pytest

from repro.core import (
    ConversionStrategy,
    build_cholesky_dag,
    build_precision_map,
    two_precision_map,
    uniform_map,
)
from repro.precision import Precision
from repro.runtime import execute_numeric
from repro.runtime.distributed import execute_numeric_distributed
from repro.tiles import ProcessGrid
from repro.tiles.norms import tile_norms
from repro.tiles.tilematrix import TiledSymmetricMatrix


def _mat(rng, n=96, nb=16):
    a = rng.standard_normal((n, n))
    return TiledSymmetricMatrix.from_dense(a @ a.T + n * np.eye(n), nb)


class TestDistributedExecutor:
    @pytest.mark.parametrize("grid", [(1, 2), (2, 2), (2, 3)])
    def test_matches_sequential_fp64(self, rng, grid):
        mat = _mat(rng)
        g = ProcessGrid(*grid)
        dag = build_cholesky_dag(96, 16, uniform_map(6, Precision.FP64), grid=g)
        seq = execute_numeric(dag.graph, mat)
        dist = execute_numeric_distributed(dag.graph, mat, g.size)
        assert np.array_equal(dist.lower_dense(), seq.lower_dense())

    @pytest.mark.parametrize("strategy", [ConversionStrategy.AUTO, ConversionStrategy.TTC])
    def test_matches_sequential_mixed_precision(self, rng, strategy):
        """STC payload quantisation on the wire reproduces the sequential
        semantics bit-for-bit."""
        mat = _mat(rng)
        g = ProcessGrid(2, 2)
        kmap = two_precision_map(6, Precision.FP16)
        dag = build_cholesky_dag(96, 16, kmap, strategy=strategy, grid=g)
        seq = execute_numeric(dag.graph, mat)
        dist = execute_numeric_distributed(dag.graph, mat, g.size)
        assert np.array_equal(dist.lower_dense(), seq.lower_dense())

    def test_adaptive_map(self, rng):
        mat = _mat(rng, n=120, nb=20)
        g = ProcessGrid(1, 3)
        kmap = build_precision_map(tile_norms(mat), 1e-4)
        dag = build_cholesky_dag(120, 20, kmap, grid=g)
        seq = execute_numeric(dag.graph, mat)
        dist = execute_numeric_distributed(dag.graph, mat, 3)
        assert np.array_equal(dist.lower_dense(), seq.lower_dense())

    def test_single_rank_shortcut(self, rng):
        mat = _mat(rng)
        dag = build_cholesky_dag(96, 16, uniform_map(6, Precision.FP64))
        out = execute_numeric_distributed(dag.graph, mat, 1)
        l = out.lower_dense()
        assert np.allclose(l @ l.T, mat.to_dense())

    def test_rank_count_validated(self, rng):
        mat = _mat(rng)
        g = ProcessGrid(2, 2)
        dag = build_cholesky_dag(96, 16, uniform_map(6, Precision.FP64), grid=g)
        with pytest.raises(ValueError, match="rank"):
            execute_numeric_distributed(dag.graph, mat, 2)
        with pytest.raises(ValueError):
            execute_numeric_distributed(dag.graph, mat, 0)

    def test_worker_error_propagates(self, rng):
        mat = _mat(rng)
        g = ProcessGrid(2, 1)
        dag = build_cholesky_dag(96, 16, uniform_map(6, Precision.FP64), grid=g)
        dag.graph.tasks[0].kind = "BROKEN"
        with pytest.raises(RuntimeError, match="rank"):
            execute_numeric_distributed(dag.graph, mat, 2)
