"""Tests for the process-based distributed numeric executor."""

import time

import numpy as np
import pytest

from repro.core import (
    ConversionStrategy,
    build_cholesky_dag,
    build_precision_map,
    two_precision_map,
    uniform_map,
)
from repro.faults import FaultPlan, FaultSpec
from repro.precision import Precision
from repro.runtime import DistributedReport, execute_numeric
from repro.runtime.distributed import execute_numeric_distributed
from repro.tiles import ProcessGrid
from repro.tiles.norms import tile_norms
from repro.tiles.tilematrix import TiledSymmetricMatrix


def _mat(rng, n=96, nb=16):
    a = rng.standard_normal((n, n))
    return TiledSymmetricMatrix.from_dense(a @ a.T + n * np.eye(n), nb)


class TestDistributedExecutor:
    @pytest.mark.parametrize("grid", [(1, 2), (2, 2), (2, 3)])
    def test_matches_sequential_fp64(self, rng, grid):
        mat = _mat(rng)
        g = ProcessGrid(*grid)
        dag = build_cholesky_dag(96, 16, uniform_map(6, Precision.FP64), grid=g)
        seq = execute_numeric(dag.graph, mat)
        dist = execute_numeric_distributed(dag.graph, mat, g.size)
        assert np.array_equal(dist.lower_dense(), seq.lower_dense())

    @pytest.mark.parametrize("strategy", [ConversionStrategy.AUTO, ConversionStrategy.TTC])
    def test_matches_sequential_mixed_precision(self, rng, strategy):
        """STC payload quantisation on the wire reproduces the sequential
        semantics bit-for-bit."""
        mat = _mat(rng)
        g = ProcessGrid(2, 2)
        kmap = two_precision_map(6, Precision.FP16)
        dag = build_cholesky_dag(96, 16, kmap, strategy=strategy, grid=g)
        seq = execute_numeric(dag.graph, mat)
        dist = execute_numeric_distributed(dag.graph, mat, g.size)
        assert np.array_equal(dist.lower_dense(), seq.lower_dense())

    def test_adaptive_map(self, rng):
        mat = _mat(rng, n=120, nb=20)
        g = ProcessGrid(1, 3)
        kmap = build_precision_map(tile_norms(mat), 1e-4)
        dag = build_cholesky_dag(120, 20, kmap, grid=g)
        seq = execute_numeric(dag.graph, mat)
        dist = execute_numeric_distributed(dag.graph, mat, 3)
        assert np.array_equal(dist.lower_dense(), seq.lower_dense())

    def test_single_rank_shortcut(self, rng):
        mat = _mat(rng)
        dag = build_cholesky_dag(96, 16, uniform_map(6, Precision.FP64))
        out = execute_numeric_distributed(dag.graph, mat, 1)
        l = out.lower_dense()
        assert np.allclose(l @ l.T, mat.to_dense())

    def test_rank_count_validated(self, rng):
        mat = _mat(rng)
        g = ProcessGrid(2, 2)
        dag = build_cholesky_dag(96, 16, uniform_map(6, Precision.FP64), grid=g)
        with pytest.raises(ValueError, match="rank"):
            execute_numeric_distributed(dag.graph, mat, 2)
        with pytest.raises(ValueError):
            execute_numeric_distributed(dag.graph, mat, 0)

    def test_worker_error_propagates(self, rng):
        mat = _mat(rng)
        g = ProcessGrid(2, 1)
        dag = build_cholesky_dag(96, 16, uniform_map(6, Precision.FP64), grid=g)
        dag.graph.tasks[0].kind = "BROKEN"
        with pytest.raises(RuntimeError, match="rank"):
            execute_numeric_distributed(dag.graph, mat, 2)


def _rank_task(graph, rank: int) -> int:
    """A task id owned by ``rank``, late enough that other work exists."""
    tids = [t.tid for t in graph if t.rank == rank]
    assert tids, f"grid layout assigns no tasks to rank {rank}"
    return tids[len(tids) // 2]


class TestDistributedFaults:
    """Fault injection against the SPMD executor (ISSUE 3 acceptance)."""

    TIMEOUT = 30.0  # documented bound: failure must surface well within it

    def setup_case(self, rng):
        mat = _mat(rng)
        g = ProcessGrid(2, 2)
        dag = build_cholesky_dag(96, 16, uniform_map(6, Precision.FP64), grid=g)
        return mat, g, dag

    def test_sigkill_fails_fast_within_timeout(self, rng):
        mat, g, dag = self.setup_case(rng)
        plan = FaultPlan(
            (FaultSpec("kill_rank", rank=1, task=_rank_task(dag.graph, 1)),)
        )
        t0 = time.monotonic()
        with pytest.raises(RuntimeError, match="died without reporting"):
            execute_numeric_distributed(
                dag.graph, mat, g.size, timeout=self.TIMEOUT, fault_plan=plan
            )
        elapsed = time.monotonic() - t0
        # fail-fast: detection rides on exitcode polling, not the timeout
        assert elapsed < self.TIMEOUT / 2

    def test_exit0_rank_detected_as_dead(self, rng):
        """A pending rank exiting with code 0 used to hang until timeout."""
        mat, g, dag = self.setup_case(rng)
        plan = FaultPlan(
            (FaultSpec("kill_rank", rank=1, task=_rank_task(dag.graph, 1),
                       mode="exit0"),)
        )
        t0 = time.monotonic()
        with pytest.raises(RuntimeError, match="exit 0"):
            execute_numeric_distributed(
                dag.graph, mat, g.size, timeout=self.TIMEOUT, fault_plan=plan
            )
        assert time.monotonic() - t0 < self.TIMEOUT / 2

    def test_exception_mode_reports_rank_failure(self, rng):
        mat, g, dag = self.setup_case(rng)
        plan = FaultPlan(
            (FaultSpec("kill_rank", rank=0, task=_rank_task(dag.graph, 0),
                       mode="exception", note="scripted"),)
        )
        with pytest.raises(RuntimeError, match="rank 0"):
            execute_numeric_distributed(
                dag.graph, mat, g.size, timeout=self.TIMEOUT, fault_plan=plan
            )

    def test_degradation_is_bit_identical(self, rng):
        """Rank loss + degrade=True recovers the exact sequential result."""
        mat, g, dag = self.setup_case(rng)
        seq = execute_numeric(dag.graph, mat)
        plan = FaultPlan(
            (FaultSpec("kill_rank", rank=1, task=_rank_task(dag.graph, 1)),)
        )
        report = execute_numeric_distributed(
            dag.graph, mat, g.size, timeout=self.TIMEOUT, fault_plan=plan,
            degrade=True, return_report=True,
        )
        assert isinstance(report, DistributedReport)
        assert report.degraded
        assert 1 in report.dead_ranks
        assert report.error is not None
        assert np.array_equal(report.matrix.lower_dense(), seq.lower_dense())

    def test_degrade_without_report_returns_matrix(self, rng):
        mat, g, dag = self.setup_case(rng)
        seq = execute_numeric(dag.graph, mat)
        plan = FaultPlan(
            (FaultSpec("kill_rank", rank=1, task=_rank_task(dag.graph, 1),
                       mode="exception"),)
        )
        out = execute_numeric_distributed(
            dag.graph, mat, g.size, timeout=self.TIMEOUT, fault_plan=plan,
            degrade=True,
        )
        assert isinstance(out, TiledSymmetricMatrix)
        assert np.array_equal(out.lower_dense(), seq.lower_dense())

    def test_delayed_message_still_bit_identical(self, rng):
        """delay_message perturbs timing only — results must not change."""
        mat, g, dag = self.setup_case(rng)
        seq = execute_numeric(dag.graph, mat)
        plan = FaultPlan(
            (FaultSpec("delay_message", rank=0, message=0, delay_s=0.2),)
        )
        dist = execute_numeric_distributed(
            dag.graph, mat, g.size, timeout=self.TIMEOUT, fault_plan=plan
        )
        assert np.array_equal(dist.lower_dense(), seq.lower_dense())

    def test_healthy_run_report(self, rng):
        mat, g, dag = self.setup_case(rng)
        report = execute_numeric_distributed(
            dag.graph, mat, g.size, timeout=self.TIMEOUT, return_report=True
        )
        assert isinstance(report, DistributedReport)
        assert not report.degraded
        assert report.error is None
        assert report.dead_ranks == ()

    def test_single_rank_report(self, rng):
        mat = _mat(rng)
        dag = build_cholesky_dag(96, 16, uniform_map(6, Precision.FP64))
        report = execute_numeric_distributed(dag.graph, mat, 1, return_report=True)
        assert isinstance(report, DistributedReport)
        assert not report.degraded


class TestRankHeartbeats:
    """Hung-rank visibility: per-rank heartbeat stamps (ISSUE 9)."""

    TIMEOUT = 30.0

    def setup_case(self, rng):
        mat = _mat(rng)
        g = ProcessGrid(2, 2)
        dag = build_cholesky_dag(96, 16, uniform_map(6, Precision.FP64), grid=g)
        return mat, g, dag

    def test_healthy_report_carries_fresh_ages(self, rng):
        mat, g, dag = self.setup_case(rng)
        report = execute_numeric_distributed(
            dag.graph, mat, g.size, timeout=self.TIMEOUT, return_report=True
        )
        # every rank reported, so every recorded age was reset to fresh
        assert all(age == 0.0 for age in report.heartbeat_ages.values())

    def test_silent_rank_raises_alert_event(self, rng, tmp_path):
        """A delayed message makes ranks go silent past ``silent_after``:
        the parent must emit ``distributed.rank_silent`` at alert severity
        while the numeric result stays bit-identical."""
        import json

        from repro.obs import event_log, get_registry

        mat, g, dag = self.setup_case(rng)
        seq = execute_numeric(dag.graph, mat.copy())
        plan = FaultPlan(
            (FaultSpec("delay_message", rank=0, message=0, delay_s=1.5),)
        )
        events_path = tmp_path / "events.jsonl"
        before = get_registry().counter("distributed.rank_silent").value()
        with event_log(events_path, run_id="hb"):
            report = execute_numeric_distributed(
                dag.graph, mat, g.size, timeout=self.TIMEOUT,
                fault_plan=plan, silent_after=0.3, return_report=True,
            )
        assert report.error is None
        assert np.array_equal(report.matrix.lower_dense(), seq.lower_dense())
        records = [
            json.loads(line)
            for line in events_path.read_text().splitlines()
            if line
        ]
        silent = [r for r in records if r["type"] == "distributed.rank_silent"]
        assert silent, "no rank_silent event despite 1.5 s silence"
        assert silent[0]["severity"] == "alert"
        assert silent[0]["attrs"]["age_seconds"] > 0.3
        assert get_registry().counter("distributed.rank_silent").value() > before
        # stale ages were observed at some point during the run
        assert report.heartbeat_ages
