"""The trace-analysis layer: data-motion ledger, critical path, analyze CLI."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core import two_precision_map, uniform_map
from repro.core.solver import simulate_cholesky
from repro.obs.analysis import (
    analyze_path,
    analyze_trace,
    build_ledger,
    critical_path,
    engine_slack,
    load_trace_events,
    render_analysis,
    utilization_timeline,
)
from repro.perfmodel import NodeSpec
from repro.perfmodel.gpus import V100
from repro.precision import Precision
from repro.runtime import Platform
from repro.runtime.tracing import RunStats, TraceEvent


@pytest.fixture(scope="module")
def sim_report():
    kmap = two_precision_map(6, Precision.FP16)
    platform = Platform.single_gpu(V100)
    return simulate_cholesky(6 * 512, 512, kmap, platform, record_events=True)


@pytest.fixture(scope="module")
def multinode_report():
    kmap = two_precision_map(8, Precision.FP16_32)
    node = NodeSpec("test", V100, 1, 256e9, 25e9, 1.5e-6)
    platform = Platform(node=node, n_nodes=2)
    return simulate_cholesky(8 * 256, 256, kmap, platform, record_events=True)


class TestLedger:
    def test_reconciles_exactly_with_runstats(self, sim_report):
        ledger = build_ledger(sim_report.trace.events)
        assert ledger.reconcile(sim_report.stats) == []
        # the dict form reconciles identically
        assert ledger.reconcile(sim_report.stats.to_dict()) == []

    def test_reconciles_multinode_with_nic_traffic(self, multinode_report):
        ledger = build_ledger(multinode_report.trace.events)
        assert multinode_report.stats.nic_bytes > 0
        assert ledger.bytes_by_link()["nic"] == multinode_report.stats.nic_bytes
        assert ledger.reconcile(multinode_report.stats) == []

    def test_totals_match_stats_counters(self, sim_report):
        ledger = build_ledger(sim_report.trace.events)
        by_link = ledger.bytes_by_link()
        assert by_link["h2d"] == sim_report.stats.h2d_bytes
        assert by_link.get("d2h", 0) == sim_report.stats.d2h_bytes
        assert ledger.total_bytes == (
            sim_report.stats.h2d_bytes
            + sim_report.stats.d2h_bytes
            + sim_report.stats.nic_bytes
        )

    def test_mixed_precision_saves_bytes_vs_fp64(self, sim_report):
        ledger = build_ledger(sim_report.trace.events)
        assert ledger.total_saved_bytes > 0
        # every row's FP64 equivalent is at least its actual bytes
        assert all(r.saved_bytes >= 0 for r in ledger.rows)

    def test_all_fp64_run_saves_nothing(self):
        kmap = uniform_map(4, Precision.FP64)
        rep = simulate_cholesky(4 * 256, 256, kmap, Platform.single_gpu(V100),
                                record_events=True)
        ledger = build_ledger(rep.trace.events)
        assert ledger.total_saved_bytes == 0
        assert ledger.reconcile(rep.stats) == []

    def test_reconcile_reports_discrepancy(self, sim_report):
        ledger = build_ledger(sim_report.trace.events)
        tampered = sim_report.stats.to_dict()
        name, value = next(iter(tampered["h2d_bytes_by_precision"].items()))
        tampered["h2d_bytes_by_precision"][name] = value + 1
        problems = ledger.reconcile(tampered)
        assert problems and any("h2d" in p for p in problems)

    def test_stats_only_ledger(self, sim_report):
        ledger = build_ledger(stats=sim_report.stats)
        assert ledger.source == "stats"
        assert ledger.bytes_by_link()["h2d"] == sim_report.stats.h2d_bytes
        assert ledger.reconcile(sim_report.stats) == []

    def test_table_renders(self, sim_report):
        text = build_ledger(sim_report.trace.events).table()
        assert "data-motion ledger" in text
        assert "stc" in text and "ttc" in text

    def test_to_dict_round_trips_totals(self, sim_report):
        doc = build_ledger(sim_report.trace.events).to_dict()
        assert doc["schema"] == "repro.obs.ledger/1"
        assert doc["total_bytes"] == sum(r["bytes"] for r in doc["rows"])
        assert doc["total_saved_bytes_vs_fp64"] == sum(
            r["saved_bytes"] for r in doc["rows"]
        )


class TestConvertSiteTags:
    def test_every_convert_event_is_tagged(self, sim_report):
        converts = [e for e in sim_report.trace.events if e.kind == "CONVERT"]
        assert converts
        for ev in converts:
            assert ev.site in ("stc", "ttc")
            assert ev.src_precision is not None
            assert ev.dst_precision is not None
            assert ev.src_precision != ev.dst_precision

    def test_site_counts_match_stats(self, sim_report):
        converts = [e for e in sim_report.trace.events if e.kind == "CONVERT"]
        by_site = {}
        for ev in converts:
            by_site[ev.site] = by_site.get(ev.site, 0) + 1
        assert by_site == sim_report.stats.conversions_by_site
        assert sum(by_site.values()) == sim_report.stats.n_conversions

    def test_non_convert_events_untagged(self, sim_report):
        for ev in sim_report.trace.events:
            if ev.kind != "CONVERT":
                assert ev.site is None

    def test_ttc_strategy_converts_only_at_receivers(self):
        from repro.core import ConversionStrategy

        kmap = two_precision_map(5, Precision.FP16)
        rep = simulate_cholesky(5 * 256, 256, kmap, Platform.single_gpu(V100),
                                strategy=ConversionStrategy.TTC, record_events=True)
        sites = {e.site for e in rep.trace.events if e.kind == "CONVERT"}
        assert sites == {"ttc"}
        assert rep.stats.conversions_by_site.keys() == {"ttc"}


_precisions = st.sampled_from(list(Precision))
_link_event = st.builds(
    TraceEvent,
    rank=st.integers(0, 3),
    engine=st.sampled_from(["h2d", "d2h", "nic"]),
    kind=st.just("XFER"),
    t_start=st.just(0.0),
    t_end=st.floats(0.0, 1.0, allow_nan=False),
    precision=_precisions,
    bytes=st.integers(0, 10**9),
)
_convert_event = st.builds(
    TraceEvent,
    rank=st.integers(0, 3),
    engine=st.just("compute"),
    kind=st.just("CONVERT"),
    t_start=st.just(0.0),
    t_end=st.floats(0.0, 1.0, allow_nan=False),
    precision=_precisions,
    site=st.sampled_from(["stc", "ttc"]),
    src_precision=_precisions,
    dst_precision=_precisions,
)


class TestLedgerProperty:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.one_of(_link_event, _convert_event), max_size=40))
    def test_ledger_reconciles_with_replayed_stats(self, events):
        # replay the same events into RunStats through its own counters:
        # the ledger must agree with them byte-for-byte, always
        stats = RunStats()
        for ev in events:
            if ev.engine == "h2d":
                stats.add_h2d(ev.precision, ev.bytes)
            elif ev.engine == "d2h":
                stats.add_d2h(ev.precision, ev.bytes)
            elif ev.engine == "nic":
                stats.add_nic(ev.precision, ev.bytes)
            elif ev.kind == "CONVERT":
                stats.add_conversion(ev.site, ev.duration)
        ledger = build_ledger(events)
        assert ledger.reconcile(stats) == []
        assert ledger.reconcile(stats.to_dict()) == []


class TestCriticalPath:
    def test_length_equals_makespan(self, sim_report):
        cp = critical_path(sim_report.trace.events)
        assert cp.makespan == pytest.approx(sim_report.stats.makespan)
        assert cp.length == pytest.approx(cp.makespan, rel=1e-9)
        assert cp.gap_seconds <= 1e-9 * max(cp.makespan, 1.0) * cp.n_events

    def test_length_equals_makespan_multinode(self, multinode_report):
        cp = critical_path(multinode_report.trace.events)
        assert cp.length == pytest.approx(cp.makespan, rel=1e-9)

    def test_chain_is_chronological_and_contiguous(self, sim_report):
        cp = critical_path(sim_report.trace.events)
        tol = 1e-9 * max(cp.makespan, 1.0)
        assert cp.events[0].t_start <= tol
        assert cp.events[-1].t_end == pytest.approx(cp.makespan)
        for prev, nxt in zip(cp.events, cp.events[1:]):
            assert prev.t_end <= nxt.t_start + tol

    def test_time_decomposition_sums_to_length(self, sim_report):
        # a gap-free chain's busy time tiles its whole span
        cp = critical_path(sim_report.trace.events)
        total = sum(cp.time_by_engine.values())
        assert total == pytest.approx(cp.length, rel=1e-6)
        assert sum(cp.time_by_kind.values()) == pytest.approx(total)

    def test_empty_trace(self):
        cp = critical_path([])
        assert cp.n_events == 0 and cp.makespan == 0.0 and cp.length == 0.0

    def test_zero_duration_events_terminate(self):
        events = [
            TraceEvent(0, "compute", "A", 0.0, 0.0),
            TraceEvent(0, "compute", "B", 0.0, 0.0),
            TraceEvent(0, "compute", "C", 0.0, 1.0),
            TraceEvent(0, "compute", "D", 1.0, 1.0),
        ]
        cp = critical_path(events)
        assert cp.makespan == 1.0
        assert cp.length == pytest.approx(1.0)

    def test_gap_is_reported_for_idle_schedules(self):
        events = [
            TraceEvent(0, "compute", "A", 0.0, 1.0),
            TraceEvent(0, "compute", "B", 3.0, 4.0),
        ]
        cp = critical_path(events)
        assert cp.gap_seconds == pytest.approx(2.0)


class TestSlackAndUtilization:
    def test_slack_nonnegative_and_bounded(self, sim_report):
        cp = critical_path(sim_report.trace.events)
        slack = engine_slack(sim_report.trace.events, cp.makespan)
        assert slack
        for value in slack.values():
            assert 0.0 <= value <= cp.makespan + 1e-12

    def test_utilization_fractions_in_range(self, sim_report):
        util = utilization_timeline(sim_report.trace.events, n_buckets=16)
        assert util
        for fractions in util.values():
            assert len(fractions) == 16
            assert all(0.0 <= f <= 1.0 for f in fractions)

    def test_fully_busy_engine_reads_one(self):
        events = [TraceEvent(0, "compute", "A", 0.0, 2.0)]
        util = utilization_timeline(events, n_buckets=4)
        assert util["compute"] == pytest.approx([1.0] * 4)

    def test_empty_inputs(self):
        assert engine_slack([]) == {}
        assert utilization_timeline([]) == {}


class TestAnalyzeAndCLI:
    def test_perfetto_round_trip_reconciles(self, sim_report, tmp_path):
        path = tmp_path / "trace.json"
        obs.write_perfetto_trace(sim_report.trace.events, path, counters=True)
        events = load_trace_events(path)
        assert len(events) == len(sim_report.trace.events)
        assert build_ledger(events).reconcile(sim_report.stats) == []
        sites = {e.site for e in events if e.kind == "CONVERT"}
        assert sites == {"stc", "ttc"}

    def test_analyze_trace_document(self, sim_report):
        doc = analyze_trace(sim_report.trace.events, sim_report.stats.to_dict())
        assert doc["schema"] == "repro.obs.analysis/1"
        assert doc["reconciliation"] == {"checked": True, "mismatches": []}
        cp = doc["critical_path"]
        assert cp["length_seconds"] == pytest.approx(cp["makespan_seconds"], rel=1e-9)
        assert doc["utilization"] and doc["slack_seconds"]
        text = render_analysis(doc)
        assert "reconciles exactly" in text
        assert "critical path" in text

    def test_analyze_path_on_run_dir(self, sim_report, tmp_path):
        obs.write_perfetto_trace(sim_report.trace.events, tmp_path / "trace.json")
        obs.write_run_summary(tmp_path / "summary.json", stats=sim_report.stats)
        doc = analyze_path(tmp_path)
        assert doc["reconciliation"]["checked"]
        assert doc["reconciliation"]["mismatches"] == []
        assert doc["source"]["trace"].endswith("trace.json")

    def test_analyze_path_rejects_empty_dir(self, tmp_path):
        with pytest.raises(ValueError, match="nothing analyzable"):
            analyze_path(tmp_path)

    def test_cli_analyze(self, sim_report, tmp_path, capsys):
        from repro.cli import main

        obs.write_perfetto_trace(sim_report.trace.events, tmp_path / "trace.json")
        obs.write_run_summary(tmp_path / "summary.json", stats=sim_report.stats)
        out_json = tmp_path / "analysis.json"
        rc = main(["analyze", str(tmp_path), "--json-out", str(out_json)])
        assert rc == 0
        assert "reconciles exactly" in capsys.readouterr().out
        doc = json.loads(out_json.read_text())
        assert doc["schema"] == "repro.obs.analysis/1"

    def test_cli_analyze_missing_path(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["analyze", str(tmp_path / "nope")])
        assert rc == 2
        assert "analyze:" in capsys.readouterr().err
