"""The live telemetry plane: progress, snapshot bus, server, watchdog.

Covers the Prometheus exposition conformance lint, the in-flight
progress state with fake clocks, alert-rule parsing and watchdog
edge/grace/abort semantics, the scrape server's endpoints over real
HTTP, immediate flushing of alert-severity events, warehouse ingest of
live documents, ``repro watch``, and — the acceptance test — a real
subprocess whose synthetic stall raises a ``live.stall`` alert while
``/metrics`` and ``/progress`` stay conformant and monotone.
"""

from __future__ import annotations

import io
import json
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.obs import MetricsRegistry, lint_prometheus_text, to_prometheus_text
from repro.obs.alerts import AlertRule, Watchdog, WatchdogAbort, parse_alert_arg
from repro.obs.events import EventLog
from repro.obs.live import (
    BEAT_STRIDE,
    LivePlane,
    LiveProgress,
    SnapshotBus,
    live_plane,
    render_progress_line,
    run_started,
)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# -- Prometheus exposition conformance ---------------------------------------

class TestPrometheusConformance:
    def test_label_escaping_round_trip(self):
        reg = MetricsRegistry()
        nasty = 'quo"te back\\slash new\nline'
        reg.gauge("g", "help").set(1.0, label=nasty)
        text = to_prometheus_text(reg)
        assert lint_prometheus_text(text) == []
        # exact escaped body: \" for quote, \\ for backslash, \n for newline
        assert 'label="quo\\"te back\\\\slash new\\nline"' in text

    def test_summary_family_shape(self):
        reg = MetricsRegistry()
        t = reg.timer("lat", "latency")
        for v in (0.1, 0.2, 0.9):
            t.observe(v)
        text = to_prometheus_text(reg)
        assert lint_prometheus_text(text) == []
        assert "# TYPE lat summary" in text
        for q in ("0.5", "0.9", "0.99"):
            assert f'lat{{quantile="{q}"}}' in text
        assert "lat_sum " in text
        assert "lat_count 3" in text

    def test_counter_total_suffix_and_type_ordering(self):
        reg = MetricsRegistry()
        reg.counter("sim.tasks", "t").inc(5)
        reg.gauge("alpha", "a").set(1)
        reg.counter("beta", "b").inc(1)
        text = to_prometheus_text(reg)
        assert lint_prometheus_text(text) == []
        assert "# TYPE sim_tasks_total counter" in text
        # every TYPE line precedes its samples; family names sorted
        families = [ln.split()[2] for ln in text.splitlines()
                    if ln.startswith("# TYPE ")]
        assert families == sorted(families)

    def test_lint_catches_violations(self):
        assert lint_prometheus_text("no_type_metric 1\n")
        assert lint_prometheus_text("# TYPE x bogus\nx 1\n")
        assert lint_prometheus_text("# TYPE x gauge\n# TYPE x gauge\nx 1\n")
        assert lint_prometheus_text('# TYPE x gauge\nx{l="bad\nbreak"} 1\n')
        bad_family = "# TYPE s summary\ns_bucket 1\n"
        assert lint_prometheus_text(bad_family)
        assert lint_prometheus_text("x 1\n# TYPE x gauge\nx 2\n")

    def test_lint_accepts_quantile_and_concatenated_blocks(self):
        block = ("# TYPE s summary\n"
                 's{quantile="0.5"} 1\n'
                 "s_sum 2\ns_count 3\n")
        assert lint_prometheus_text(block) == []
        other = "# TYPE g gauge\ng 1\n"
        assert lint_prometheus_text(block + other) == []
        assert lint_prometheus_text(
            '# TYPE s summary\ns{quantile="1.5"} 1\n'
        )


# -- LiveProgress ------------------------------------------------------------

class TestLiveProgress:
    def test_begin_beat_snapshot_rate_eta(self):
        clock = FakeClock()
        p = LiveProgress(run_id="r", clock=clock)
        beat = p.begin(1000, "sim.test")
        clock.advance(1.0)
        beat(500, 7)
        snap = p.snapshot()
        assert snap["done"] == 500 and snap["total"] == 1000
        assert snap["fraction"] == pytest.approx(0.5)
        assert snap["tasks_per_second"] == pytest.approx(500.0)
        assert snap["eta_seconds"] == pytest.approx(1.0)
        assert snap["live_tasks"] == 7
        assert snap["heartbeat_age_seconds"] == 0.0
        assert not snap["complete"]

    def test_heartbeat_age_grows_without_beats(self):
        clock = FakeClock()
        p = LiveProgress(clock=clock)
        beat = p.begin(10, "x")
        beat(1, 0)
        clock.advance(4.5)
        assert p.snapshot()["heartbeat_age_seconds"] == pytest.approx(4.5)

    def test_announce_total_feeds_unknown_total_begin(self):
        clock = FakeClock()
        p = LiveProgress(clock=clock)
        p.announce_total(4321)
        p.begin(None, "sim.stream")
        assert p.snapshot()["total"] == 4321

    def test_finish_marks_complete_and_pins_done(self):
        p = LiveProgress(clock=FakeClock())
        p.begin(10, "x")
        p.finish(10)
        snap = p.snapshot()
        assert snap["complete"] and snap["done"] == 10
        assert snap["eta_seconds"] is None

    def test_campaign_hold_shields_nested_runs(self):
        clock = FakeClock()
        p = LiveProgress(clock=clock)
        p.hold("sweep:test", 20)
        nested_beat = p.begin(99999, "sim.materialized")  # a sweep point
        clock.advance(1.0)
        nested_beat(5000, 3)  # refreshes the heartbeat only
        p.finish(99999)  # nested finish is a no-op while held
        snap = p.snapshot()
        assert snap["phase"] == "sweep:test"
        assert snap["total"] == 20 and snap["done"] == 0
        assert snap["heartbeat_age_seconds"] == 0.0
        assert not snap["complete"]
        p.set_points(12, sweep_cache_hits=4)
        p.release()
        snap = p.snapshot()
        assert snap["done"] == 12 and snap["complete"]
        assert snap["gauges"]["sweep_cache_hits"] == 4

    def test_abort_raises_from_next_beat(self):
        p = LiveProgress(clock=FakeClock())
        beat = p.begin(100, "x")
        p.request_abort("stalled")
        with pytest.raises(WatchdogAbort, match="stalled"):
            beat(1, 0)

    def test_synthetic_stall_sleeps_once(self):
        p = LiveProgress()
        p.configure_stall(10, 0.05)
        beat = p.begin(100, "x")
        t0 = time.monotonic()
        beat(10, 0)
        stalled = time.monotonic() - t0
        t0 = time.monotonic()
        beat(20, 0)
        second = time.monotonic() - t0
        assert stalled >= 0.05 and second < 0.05


# -- SnapshotBus -------------------------------------------------------------

class TestSnapshotBus:
    def test_counter_rates_are_monotonic_deltas(self):
        clock = FakeClock()
        reg = MetricsRegistry()
        c = reg.counter("sim.evictions", "e")
        p = LiveProgress(clock=clock)
        bus = SnapshotBus(p, registry=reg, interval=1.0, clock=clock)
        bus.capture()  # establish the baseline totals
        c.inc(30)
        clock.advance(2.0)
        snap = bus.capture()
        assert snap["counter_rates"]["sim.evictions"] == pytest.approx(15.0)
        assert snap["counter_totals"]["sim.evictions"] == 30.0
        c.inc(10)
        clock.advance(1.0)
        assert bus.capture()["counter_rates"]["sim.evictions"] == pytest.approx(10.0)

    def test_subscribers_see_every_capture_and_errors_are_contained(self):
        clock = FakeClock()
        p = LiveProgress(clock=clock)
        bus = SnapshotBus(p, registry=MetricsRegistry(), interval=1.0, clock=clock)
        seen = []
        bus.subscribe(lambda s: seen.append(s["done"]))
        bus.subscribe(lambda s: 1 / 0)  # must not break the bus
        bus.capture()
        clock.advance(1.0)
        bus.capture()
        assert seen == [0, 0]
        assert len(bus.history) == 2

    def test_background_thread_captures(self):
        p = LiveProgress()
        bus = SnapshotBus(p, registry=MetricsRegistry(), interval=0.02)
        bus.start()
        try:
            deadline = time.monotonic() + 5.0
            while not bus.history and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            bus.stop()
        assert bus.history


# -- alert rules + watchdog --------------------------------------------------

class TestParseAlertArg:
    def test_forms(self):
        stall = parse_alert_arg("stall=10")
        assert stall.kind == "stall" and stall.max_age_seconds == 10.0
        rank = parse_alert_arg("rank-silent=5:abort")
        assert rank.kind == "rank-silent" and rank.abort
        floor = parse_alert_arg("tasks_per_second<1000")
        assert floor.kind == "metric" and floor.threshold.direction == "higher"
        ceil = parse_alert_arg("host_pressure>0.9")
        assert ceil.threshold.direction == "lower" and ceil.bound == 0.9

    def test_round_trip_dict(self):
        rule = parse_alert_arg("tasks_per_second<1000:abort")
        assert AlertRule.from_dict(rule.to_dict()) == rule

    @pytest.mark.parametrize("bad", ["", "stall=abc", "<5", "justaname", "x<"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_alert_arg(bad)


def _snap(**kw) -> dict:
    base = {"phase": "sim.test", "done": 100, "total": 1000,
            "elapsed_seconds": 60.0, "heartbeat_age_seconds": 0.0,
            "complete": False, "gauges": {}, "counter_rates": {}}
    base.update(kw)
    return base


class TestWatchdog:
    def test_stall_fires_on_rising_edge_only(self):
        w = Watchdog([AlertRule(name="stall", kind="stall", max_age_seconds=5.0)])
        assert w.observe(_snap(heartbeat_age_seconds=1.0)) == []
        assert w.observe(_snap(heartbeat_age_seconds=9.0)) == ["stall"]
        assert w.observe(_snap(heartbeat_age_seconds=12.0)) == ["stall"]
        assert len(w.fired) == 1  # one incident, one event
        assert w.observe(_snap(heartbeat_age_seconds=0.1)) == []
        assert w.observe(_snap(heartbeat_age_seconds=8.0)) == ["stall"]
        assert len(w.fired) == 2  # re-armed after clearing

    def test_idle_phase_never_stalls(self):
        w = Watchdog([AlertRule(name="stall", kind="stall", max_age_seconds=1.0)])
        assert w.observe(_snap(phase="idle", heartbeat_age_seconds=99.0)) == []

    def test_metric_floor_with_grace(self):
        rule = parse_alert_arg("tasks_per_second<1000")
        w = Watchdog([rule])
        early = _snap(tasks_per_second=10.0, elapsed_seconds=0.5)
        assert w.observe(early) == []  # inside the grace window
        late = _snap(tasks_per_second=10.0, elapsed_seconds=30.0)
        assert w.observe(late) == ["tasks_per_second"]
        healthy = _snap(tasks_per_second=5000.0, elapsed_seconds=31.0)
        assert w.observe(healthy) == []

    def test_metric_ceiling_reads_gauges_and_rates(self):
        w = Watchdog([parse_alert_arg("host_pressure>0.9"),
                      parse_alert_arg("sim.evictions>100")])
        snap = _snap(gauges={"host_pressure": 0.95},
                     counter_rates={"sim.evictions": 500.0})
        assert w.observe(snap) == ["host_pressure", "sim.evictions"]

    def test_rank_silent_scans_per_rank_gauges(self):
        w = Watchdog([parse_alert_arg("rank-silent=5")])
        snap = _snap(gauges={"rank_heartbeat_age[0]": 0.4,
                             "rank_heartbeat_age[2]": 7.5})
        assert w.observe(snap) == ["rank-silent"]
        assert "2" in w.fired[0]["detail"]

    def test_complete_clears_everything(self):
        w = Watchdog([AlertRule(name="stall", kind="stall", max_age_seconds=1.0)])
        assert w.observe(_snap(heartbeat_age_seconds=9.0)) == ["stall"]
        assert w.observe(_snap(complete=True, heartbeat_age_seconds=9.0)) == []

    def test_abort_rule_calls_hook(self):
        reasons = []
        rule = AlertRule(name="stall", kind="stall", max_age_seconds=1.0, abort=True)
        w = Watchdog([rule], abort_hook=reasons.append)
        w.observe(_snap(heartbeat_age_seconds=5.0))
        assert reasons and "stall" in reasons[0]

    def test_fired_counter_lands_in_registry(self):
        from repro.obs import get_registry

        before = get_registry().counter("live.alerts").value(rule="stall")
        w = Watchdog([AlertRule(name="stall", kind="stall", max_age_seconds=1.0)])
        w.observe(_snap(heartbeat_age_seconds=5.0))
        assert get_registry().counter("live.alerts").value(rule="stall") == before + 1


# -- EventLog alert flush ----------------------------------------------------

class TestAlertSeverityFlush:
    def test_alert_events_flush_immediately(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path, run_id="r")
        log.emit("sim.progress", attrs={"done": 1})
        log.emit("live.stall", attrs={"rule": "stall"}, severity="alert")
        # without closing: the alert (and everything before it) is on disk
        on_disk = path.read_text(encoding="utf-8")
        assert "live.stall" in on_disk and '"severity":"alert"' in on_disk
        log.close()

    def test_plain_events_may_buffer(self, tmp_path):
        buf = io.StringIO()
        log = EventLog(buf, run_id="r")
        log.emit("a", attrs={})
        log.emit("b", attrs={}, severity="alert")
        records = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert [r["type"] for r in records] == ["a", "b"]
        assert records[1]["severity"] == "alert"
        assert "severity" not in records[0]


# -- the plane + server over real HTTP ---------------------------------------

def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.headers.get("Content-Type", ""), resp.read().decode("utf-8")


class TestLivePlaneServer:
    def test_endpoints_round_trip(self):
        with live_plane(port=0, interval=30.0, rules=[parse_alert_arg("stall=60")],
                        run_id="srv") as plane:
            beat = run_started(1000, "sim.test")
            beat(400, 3)
            ctype, body = _get(plane.url + "/progress")
            assert ctype.startswith("application/json")
            snap = json.loads(body)
            assert snap["schema"] == "repro.obs.live/1"
            assert snap["done"] == 400 and snap["run_id"] == "srv"
            assert snap["alerts"] == []
            ctype, body = _get(plane.url + "/metrics")
            assert "version=0.0.4" in ctype
            assert lint_prometheus_text(body) == []
            assert "live_tasks_done 400" in body
            _, body = _get(plane.url + "/healthz")
            health = json.loads(body)
            assert health["status"] == "ok" and health["n_rules"] == 1

    def test_unknown_route_404(self):
        with live_plane(port=0, interval=30.0) as plane:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(plane.url + "/nope")
            assert err.value.code == 404

    def test_metrics_includes_registry_and_live_blocks(self):
        reg = MetricsRegistry()
        reg.counter("sim.tasks", "t").inc(7)
        plane = LivePlane(interval=30.0, registry=reg, run_id="x")
        beat = plane.progress.begin(10, "p")
        beat(5, 1)
        text = plane.metrics_text()
        assert lint_prometheus_text(text) == []
        assert "sim_tasks_total 7" in text
        assert "live_tasks_done 5" in text

    def test_watchdog_rides_snapshot_requests(self):
        clock = FakeClock()
        plane = LivePlane(interval=30.0, rules=[parse_alert_arg("stall=5")],
                          registry=MetricsRegistry(), clock=clock)
        beat = plane.progress.begin(100, "p")
        beat(1, 0)
        clock.advance(10.0)
        snap = plane.snapshot()
        assert snap["alerts"] == ["stall"]
        assert plane.health()["status"] == "alerting"


# -- warehouse ingest of live documents --------------------------------------

class TestWarehouseLiveKind:
    def test_snapshot_and_alert_ingest(self, tmp_path):
        from repro.obs.warehouse import Warehouse

        snap = {"schema": "repro.obs.live/1", "run_id": "lr", "phase": "s",
                "done": 10, "total": 100, "fraction": 0.1,
                "tasks_per_second": 123.0, "eta_seconds": 0.7,
                "live_tasks": 2, "elapsed_seconds": 0.08,
                "heartbeat_age_seconds": 0.0, "complete": False,
                "gauges": {"host_pressure": 0.5}}
        alert = {"run_id": "lr", "ts": 0.5, "type": "live.stall", "seq": 3,
                 "severity": "alert",
                 "attrs": {"rule": "stall", "value": 6.0, "done": 10,
                           "total": 100, "elapsed_seconds": 6.5}}
        with Warehouse(tmp_path / "w.db") as wh:
            r1 = wh.ingest(snap)
            r2 = wh.ingest(alert)
            assert (r1.kind, r2.kind) == ("live", "live")
            assert r1.run_key == r2.run_key == "lr"
            scopes = wh.metric_scopes(r1.seq)
            assert scopes["live"]["tasks_per_second"] == 123.0
            assert scopes["live"]["gauge[host_pressure]"] == 0.5
            assert wh.metric_scopes(r2.seq)["live"]["alert_value"] == 6.0
            assert "live" in wh.history_table(kind="live")


# -- rendering ---------------------------------------------------------------

class TestRenderProgressLine:
    def test_full_line(self):
        line = render_progress_line({
            "phase": "sim.stream", "done": 5000, "total": 147000,
            "fraction": 5000 / 147000, "tasks_per_second": 90000.0,
            "eta_seconds": 1.6, "heartbeat_age_seconds": 0.01,
            "alerts": [], "complete": False,
        })
        assert "[sim.stream]" in line and "5,000/147,000" in line
        assert "90,000 tasks/s" in line and "eta 2s" in line

    def test_alerts_and_completion(self):
        line = render_progress_line({"phase": "p", "done": 1, "total": 1,
                                     "alerts": ["stall"], "complete": True})
        assert "ALERTS: stall" in line and "done" in line


# -- CLI: repro watch --------------------------------------------------------

class TestWatchCommand:
    def test_watch_once_against_live_plane(self, capsys):
        from repro.cli import main

        with live_plane(port=0, interval=30.0, run_id="w") as plane:
            beat = run_started(100, "sim.test")
            beat(42, 1)
            assert main(["watch", plane.url, "--once"]) == 0
            out = capsys.readouterr().out
            assert "42/100" in out
            assert main(["watch", str(plane.port), "--once", "--json"]) == 0
            snap = json.loads(capsys.readouterr().out)
            assert snap["done"] == 42

    def test_watch_port_file_and_unreachable(self, tmp_path, capsys):
        from repro.cli import main

        with live_plane(port=0, interval=30.0) as plane:
            port_file = tmp_path / "port"
            port_file.write_text(f"{plane.port}\n")
            assert main(["watch", str(port_file), "--once"]) == 0
        capsys.readouterr()
        assert main(["watch", "127.0.0.1:1", "--once"]) == 1


# -- the acceptance test: a stalled subprocess raises live.stall -------------

@pytest.mark.slow
class TestStalledSubprocess:
    def test_stall_alert_and_conformant_endpoints(self, tmp_path):
        port_file = tmp_path / "port"
        events = tmp_path / "events.jsonl"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "simulate",
             "--n", str(64 * 256), "--nb", "256",
             "--live-port", "0", "--live-port-file", str(port_file),
             "--live-interval", "0.1",
             "--alert", "stall=0.5",
             "--live-stall-after", str(BEAT_STRIDE),
             "--live-stall-seconds", "3",
             "--events-out", str(events),
             "--run-id", "stalltest"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            cwd=str(Path(__file__).resolve().parent.parent),
        )
        try:
            deadline = time.monotonic() + 30.0
            while not port_file.exists() and time.monotonic() < deadline:
                if proc.poll() is not None:
                    break
                time.sleep(0.05)
            assert port_file.exists(), (
                f"no port file; stderr: {proc.stderr.read() if proc.poll() is not None else '?'}"
            )
            base = f"http://127.0.0.1:{port_file.read_text().strip()}"

            _, body = _get(base + "/healthz")
            assert json.loads(body)["run_id"] == "stalltest"

            last_done = -1
            alerted = False
            metrics_ok = False
            while time.monotonic() < deadline and proc.poll() is None:
                try:
                    _, body = _get(base + "/progress")
                except OSError:
                    break  # run finished between polls
                snap = json.loads(body)
                assert snap["done"] >= last_done, "progress went backwards"
                last_done = snap["done"]
                if snap.get("alerts"):
                    alerted = True
                    _, mtext = _get(base + "/metrics")
                    assert lint_prometheus_text(mtext) == []
                    assert "live_alerts_active 1" in mtext
                    metrics_ok = True
                    break
                time.sleep(0.1)
            proc.wait(timeout=60)
            assert alerted, "watchdog never reported the synthetic stall"
            assert metrics_ok
            records = [json.loads(line)
                       for line in events.read_text().splitlines() if line]
            stalls = [r for r in records if r["type"] == "live.stall"]
            assert stalls and stalls[0]["severity"] == "alert"
            assert stalls[0]["attrs"]["rule"] == "stall"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
