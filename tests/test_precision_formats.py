"""Unit tests for the precision format lattice."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.precision.formats import (
    ADAPTIVE_FORMATS,
    FORMAT_INFO,
    Precision,
    bytes_per_element,
    get_higher_precision,
    get_lower_precision,
    get_storage_precision,
    parse_precision,
    rule_epsilon,
    sort_by_width,
    validate_adaptive_set,
)

ALL = list(Precision)


class TestLattice:
    def test_total_order(self):
        assert (
            Precision.FP16
            < Precision.BF16_32
            < Precision.FP16_32
            < Precision.TF32
            < Precision.FP32
            < Precision.FP64
        )

    @given(st.sampled_from(ALL), st.sampled_from(ALL))
    def test_higher_lower_consistent(self, a, b):
        hi = get_higher_precision(a, b)
        lo = get_lower_precision(a, b)
        assert {hi, lo} == {a, b}
        assert hi >= lo

    @given(st.sampled_from(ALL), st.sampled_from(ALL), st.sampled_from(ALL))
    def test_higher_associative(self, a, b, c):
        assert get_higher_precision(get_higher_precision(a, b), c) == get_higher_precision(
            a, get_higher_precision(b, c)
        )

    @given(st.sampled_from(ALL))
    def test_idempotent(self, a):
        assert get_higher_precision(a, a) == a
        assert get_lower_precision(a, a) == a

    def test_sort_by_width(self):
        assert sort_by_width([Precision.FP64, Precision.FP16, Precision.FP32]) == [
            Precision.FP16,
            Precision.FP32,
            Precision.FP64,
        ]


class TestFormatInfo:
    def test_all_formats_described(self):
        assert set(FORMAT_INFO) == set(Precision)

    def test_epsilon_ordering(self):
        # within the adaptive set the lattice order tracks accuracy:
        # wider format -> smaller rule epsilon (weakly monotone).  TF32 and
        # BF16_32 sit outside the adaptive set and their epsilons are not
        # comparable to FP16_32's (same 11-bit significand, wider range).
        eps = [rule_epsilon(p) for p in sorted(ADAPTIVE_FORMATS)]
        assert all(a >= b for a, b in zip(eps, eps[1:]))

    def test_unit_roundoffs(self):
        assert FORMAT_INFO[Precision.FP64].unit_roundoff == 2.0**-53
        assert FORMAT_INFO[Precision.FP32].unit_roundoff == 2.0**-24
        assert FORMAT_INFO[Precision.FP16].unit_roundoff == 2.0**-11

    def test_storage_bytes(self):
        assert bytes_per_element(Precision.FP64) == 8
        assert bytes_per_element(Precision.FP32) == 4
        assert bytes_per_element(Precision.TF32) == 4  # rests in FP32 words
        assert bytes_per_element(Precision.FP16) == 2
        assert bytes_per_element(Precision.FP16_32) == 2  # inputs travel as halves
        assert bytes_per_element(Precision.BF16_32) == 2

    def test_fp16_dynamic_range(self):
        assert FORMAT_INFO[Precision.FP16].dynamic_range_max == 65504.0
        assert FORMAT_INFO[Precision.BF16_32].dynamic_range_max == pytest.approx(
            float(np.finfo(np.float32).max)
        )


class TestStoragePrecision:
    def test_fp64_rests_fp64(self):
        assert get_storage_precision(Precision.FP64) == Precision.FP64

    @pytest.mark.parametrize(
        "prec",
        [Precision.FP32, Precision.TF32, Precision.FP16_32, Precision.BF16_32, Precision.FP16],
    )
    def test_everything_else_rests_fp32(self, prec):
        # TRSM's FP32 hardware floor forces FP32 storage (Fig. 2b)
        assert get_storage_precision(prec) == Precision.FP32


class TestParsing:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("fp64", Precision.FP64),
            ("FP32", Precision.FP32),
            ("double", Precision.FP64),
            ("single", Precision.FP32),
            ("half", Precision.FP16),
            ("fp16-32", Precision.FP16_32),
            ("bf16", Precision.BF16_32),
            (Precision.TF32, Precision.TF32),
        ],
    )
    def test_aliases(self, name, expected):
        assert parse_precision(name) == expected

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown precision"):
            parse_precision("fp8")


class TestValidateAdaptiveSet:
    def test_default_set(self):
        assert validate_adaptive_set(ADAPTIVE_FORMATS) == ADAPTIVE_FORMATS

    def test_requires_fp64(self):
        with pytest.raises(ValueError, match="must contain FP64"):
            validate_adaptive_set((Precision.FP32, Precision.FP16))

    def test_deduplicates_and_orders(self):
        out = validate_adaptive_set(
            (Precision.FP16, Precision.FP64, Precision.FP16, Precision.FP32)
        )
        assert out == (Precision.FP64, Precision.FP32, Precision.FP16)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            validate_adaptive_set(())
