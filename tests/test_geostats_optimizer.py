"""Unit and property tests for the bound-constrained Nelder–Mead."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geostats.optimizer import maximize_bounded, nelder_mead_bounded


class TestQuadratics:
    def test_interior_minimum(self):
        res = nelder_mead_bounded(
            lambda x: (x[0] - 0.7) ** 2 + (x[1] - 0.3) ** 2,
            x0=(0.01, 0.01),
            bounds=[(0.0, 1.0), (0.0, 1.0)],
            xtol=1e-10,
        )
        assert res.converged
        assert np.allclose(res.x, [0.7, 0.3], atol=1e-6)
        assert res.fun == pytest.approx(0.0, abs=1e-10)

    def test_boundary_minimum(self):
        res = nelder_mead_bounded(
            lambda x: (x[0] + 1.0) ** 2,
            x0=(0.5,),
            bounds=[(0.0, 1.0)],
            xtol=1e-10,
        )
        assert res.x[0] == pytest.approx(0.0, abs=1e-6)

    def test_3d_curved_valley(self):
        """A moderately curved valley — the likelihood-surface regime.

        (Extreme Rosenbrock-style valleys narrower than the restart
        simplex can stall projected Nelder–Mead; the paper's 2–3
        parameter likelihood surfaces are far better conditioned.)
        """

        def f(x):
            return 4 * (x[1] - x[0] ** 2) ** 2 + (1 - x[0]) ** 2 + (x[2] - 1.0) ** 2

        res = nelder_mead_bounded(
            f, x0=(0.1, 0.1, 0.1), bounds=[(0.0, 2.0)] * 3, xtol=1e-10,
            max_evals=5000, restarts=4,
        )
        assert np.allclose(res.x, [1.0, 1.0, 1.0], atol=1e-3)

    def test_iterates_stay_in_box(self):
        seen = []

        def f(x):
            seen.append(x.copy())
            return float(np.sum(x**2))

        nelder_mead_bounded(f, x0=(1.5,), bounds=[(1.0, 2.0)], max_evals=200)
        arr = np.array(seen)
        assert np.all(arr >= 1.0 - 1e-12) and np.all(arr <= 2.0 + 1e-12)
        # boundary optimum found
        assert min(np.sum(x**2) for x in seen) == pytest.approx(1.0, abs=1e-6)


class TestInfeasibleRegions:
    def test_handles_inf(self):
        """-inf likelihood probes (non-PD covariances) must not derail it."""

        def f(x):
            if x[0] > 0.8:
                return math.inf
            return (x[0] - 0.5) ** 2

        res = nelder_mead_bounded(f, x0=(0.05,), bounds=[(0.0, 1.0)], xtol=1e-9)
        assert res.x[0] == pytest.approx(0.5, abs=1e-5)

    def test_handles_nan(self):
        def f(x):
            if x[0] < 0.3:
                return float("nan")
            return (x[0] - 0.6) ** 2

        res = nelder_mead_bounded(f, x0=(0.5,), bounds=[(0.0, 1.0)], xtol=1e-9)
        assert res.x[0] == pytest.approx(0.6, abs=1e-4)


class TestBudgetsAndValidation:
    def test_max_evals_respected(self):
        calls = []

        def f(x):
            calls.append(1)
            return float(np.sum(x**2))

        res = nelder_mead_bounded(f, x0=(1.0, 1.0), bounds=[(0.0, 2.0)] * 2, max_evals=37)
        assert res.n_evals <= 37 + 2  # may finish the in-flight shrink
        assert len(calls) == res.n_evals

    def test_invalid_bounds(self):
        with pytest.raises(ValueError, match="lo < hi"):
            nelder_mead_bounded(lambda x: 0.0, (0.5,), [(1.0, 1.0)])

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError, match="bounds"):
            nelder_mead_bounded(lambda x: 0.0, (0.5, 0.5), [(0.0, 1.0)])

    def test_history(self):
        res = nelder_mead_bounded(
            lambda x: float(np.sum(x**2)), (1.0,), [(0.0, 2.0)],
            keep_history=True, max_evals=50,
        )
        assert len(res.history) == res.n_evals


class TestMaximize:
    def test_negates(self):
        res = maximize_bounded(
            lambda x: -((x[0] - 0.4) ** 2) + 3.0, (0.01,), [(0.0, 1.0)], xtol=1e-10
        )
        assert res.x[0] == pytest.approx(0.4, abs=1e-6)
        assert res.fun == pytest.approx(3.0, abs=1e-10)


@given(
    st.floats(0.1, 1.9), st.floats(0.1, 1.9), st.integers(0, 1000)
)
@settings(max_examples=30, deadline=None)
def test_property_convex_quadratic_always_solved(cx, cy, seed):
    rng = np.random.default_rng(seed)
    x0 = rng.uniform(0.01, 1.99, size=2)

    def f(x):
        return (x[0] - cx) ** 2 + 2.0 * (x[1] - cy) ** 2

    res = nelder_mead_bounded(f, x0, [(0.0, 2.0)] * 2, xtol=1e-9, max_evals=2000,
                              restarts=2)
    assert np.allclose(res.x, [cx, cy], atol=1e-4)
