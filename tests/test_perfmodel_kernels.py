"""Unit tests for the kernel time and conversion cost models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perfmodel.gpus import A100, V100
from repro.perfmodel.kernels import (
    KernelKind,
    KernelTimeModel,
    conversion_time,
    gemm_time,
    kernel_flops,
    kernel_flops_rect,
    kernel_time,
)
from repro.precision import Precision


class TestKernelFlops:
    def test_standard_counts(self):
        nb = 100
        assert kernel_flops(KernelKind.POTRF, nb) == pytest.approx(nb**3 / 3)
        assert kernel_flops(KernelKind.TRSM, nb) == nb**3
        assert kernel_flops(KernelKind.SYRK, nb) == nb**3 + nb**2
        assert kernel_flops(KernelKind.GEMM, nb) == 2 * nb**3

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            kernel_flops("TRMM", 64)

    def test_gemm_dominates(self):
        """>90 % of Cholesky flops are GEMM for moderate NT (Section IV)."""
        nt = 30
        gemm = kernel_flops(KernelKind.GEMM, 2048) * nt * (nt - 1) * (nt - 2) / 6
        other = (
            kernel_flops(KernelKind.POTRF, 2048) * nt
            + (kernel_flops(KernelKind.TRSM, 2048) + kernel_flops(KernelKind.SYRK, 2048))
            * nt * (nt - 1) / 2
        )
        assert gemm / (gemm + other) > 0.85


class TestKernelFlopsRect:
    def test_rect_counts(self):
        m, n, k = 96, 64, 32
        assert kernel_flops_rect(KernelKind.POTRF, k) == pytest.approx(k**3 / 3)
        assert kernel_flops_rect(KernelKind.TRSM, m, k) == m * k**2
        assert kernel_flops_rect(KernelKind.SYRK, m, k) == m**2 * k + m**2
        assert kernel_flops_rect(KernelKind.GEMM, m, n, k) == 2 * m * n * k

    @given(st.integers(1, 4096))
    @settings(max_examples=30)
    def test_reduces_to_square_counts(self, nb):
        """Square tiles price identically through either entry point."""
        assert kernel_flops_rect(KernelKind.POTRF, nb) == kernel_flops(KernelKind.POTRF, nb)
        assert kernel_flops_rect(KernelKind.TRSM, nb, nb) == kernel_flops(KernelKind.TRSM, nb)
        assert kernel_flops_rect(KernelKind.SYRK, nb, nb) == kernel_flops(KernelKind.SYRK, nb)
        assert kernel_flops_rect(KernelKind.GEMM, nb, nb, nb) == kernel_flops(KernelKind.GEMM, nb)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            kernel_flops_rect("TRMM", 64, 64)


class TestKernelTime:
    def test_table2_gemm_anchor(self):
        """GEMM times reproduce Table II within 15 %."""
        assert gemm_time(V100, 2048, Precision.FP64) * 1e3 == pytest.approx(2.2, rel=0.15)
        assert gemm_time(V100, 2048, Precision.FP32) * 1e3 == pytest.approx(1.09, rel=0.15)
        assert gemm_time(V100, 2048, Precision.FP16) * 1e3 == pytest.approx(0.14, rel=0.2)

    def test_kernel_efficiency_ordering(self):
        """POTRF is the least efficient kernel, GEMM the most."""
        nb = 2048
        t = {
            kind: kernel_time(V100, kind, nb, Precision.FP64) / kernel_flops(kind, nb)
            for kind in KernelKind.ALL
        }
        assert t[KernelKind.POTRF] > t[KernelKind.TRSM] > t[KernelKind.SYRK] > t[KernelKind.GEMM]

    @given(st.sampled_from([Precision.FP64, Precision.FP32, Precision.FP16]),
           st.integers(256, 4096))
    @settings(max_examples=30)
    def test_lower_precision_never_slower(self, prec, nb):
        t64 = kernel_time(V100, KernelKind.GEMM, nb, Precision.FP64)
        t = kernel_time(V100, KernelKind.GEMM, nb, prec)
        assert t <= t64 * 1.0001


class TestConversion:
    def test_same_precision_free(self):
        assert conversion_time(V100, 2048 * 2048, Precision.FP32, Precision.FP32) == 0.0

    def test_cost_scales_with_widths(self):
        n = 2048 * 2048
        t_64_16 = conversion_time(V100, n, Precision.FP64, Precision.FP16)
        t_32_16 = conversion_time(V100, n, Precision.FP32, Precision.FP16)
        assert t_64_16 > t_32_16 > 0.0

    def test_faster_hbm_converts_faster(self):
        n = 2048 * 2048
        assert conversion_time(A100, n, Precision.FP32, Precision.FP16) < conversion_time(
            V100, n, Precision.FP32, Precision.FP16
        )

    def test_conversion_well_below_fp64_gemm(self):
        """Conversion is an overhead, not a kernel-scale cost."""
        n = 2048
        conv = conversion_time(V100, n * n, Precision.FP32, Precision.FP16)
        assert conv < gemm_time(V100, n, Precision.FP64) / 5

    def test_launch_overhead_floor(self):
        tiny = conversion_time(V100, 1, Precision.FP32, Precision.FP16)
        assert tiny >= V100.conversion_launch


class TestKernelTimeModel:
    def test_bundle_consistent(self):
        model = KernelTimeModel(gpu=V100, nb=1024)
        assert model.time(KernelKind.GEMM, Precision.FP32) == kernel_time(
            V100, KernelKind.GEMM, 1024, Precision.FP32
        )
        assert model.flops(KernelKind.GEMM) == kernel_flops(KernelKind.GEMM, 1024)
        assert model.convert(Precision.FP64, Precision.FP16) == conversion_time(
            V100, 1024 * 1024, Precision.FP64, Precision.FP16
        )
