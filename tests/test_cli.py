"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.gpu == "V100" and args.config == "FP64/FP16"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "V100" in out and "H100" in out and "Tflop/s" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--n", "8192", "--nb", "1024"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "Tflop/s" in out

    def test_simulate_ttc(self, capsys):
        assert main(["simulate", "--n", "8192", "--nb", "1024",
                     "--strategy", "ttc", "--config", "FP32"]) == 0
        assert "TTC" in capsys.readouterr().out

    def test_bench_table1(self, capsys):
        assert main(["bench", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_bench_table2(self, capsys):
        assert main(["bench", "table2"]) == 0
        assert "Table II" in capsys.readouterr().out

    def test_bench_fig8(self, capsys):
        assert main(["bench", "fig8", "--gpu", "V100"]) == 0
        assert "Fig. 8" in capsys.readouterr().out

    def test_maps(self, capsys):
        assert main(["maps", "--app", "2d-matern", "--n", "8192", "--nb", "1024"]) == 0
        out = capsys.readouterr().out
        assert "tile fractions" in out and "STC" in out

    def test_mle_small(self, capsys):
        assert main(["mle", "--model", "2d-matern", "--n", "64",
                     "--accuracy", "1e-4"]) == 0
        out = capsys.readouterr().out
        assert "θ̂" in out and "loglik" in out
