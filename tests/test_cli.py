"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.gpu == "V100" and args.config == "FP64/FP16"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "V100" in out and "H100" in out and "Tflop/s" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--n", "8192", "--nb", "1024"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "Tflop/s" in out

    def test_simulate_ttc(self, capsys):
        assert main(["simulate", "--n", "8192", "--nb", "1024",
                     "--strategy", "ttc", "--config", "FP32"]) == 0
        assert "TTC" in capsys.readouterr().out

    def test_bench_table1(self, capsys):
        assert main(["bench", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_bench_table2(self, capsys):
        assert main(["bench", "table2"]) == 0
        assert "Table II" in capsys.readouterr().out

    def test_bench_fig8(self, capsys):
        assert main(["bench", "fig8", "--gpu", "V100"]) == 0
        assert "Fig. 8" in capsys.readouterr().out

    def test_maps(self, capsys):
        assert main(["maps", "--app", "2d-matern", "--n", "8192", "--nb", "1024"]) == 0
        out = capsys.readouterr().out
        assert "tile fractions" in out and "STC" in out

    def test_mle_small(self, capsys):
        assert main(["mle", "--model", "2d-matern", "--n", "64",
                     "--accuracy", "1e-4"]) == 0
        out = capsys.readouterr().out
        assert "θ̂" in out and "loglik" in out


class TestSimbench:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["simbench"])
        assert args.nt == 96 and args.mode == "materialize" and args.lookahead is None

    @pytest.mark.parametrize("mode", ["materialize", "stream"])
    def test_simbench_runs_and_writes_gateable_doc(self, mode, tmp_path, capsys):
        import json

        out = tmp_path / f"BENCH_simbench-{mode}.json"
        assert main(["simbench", "--nt", "8", "--nb", "128",
                     "--mode", mode, "--metrics-out", str(out)]) == 0
        text = capsys.readouterr().out
        assert f"simbench {mode}" in text and "tasks/s" in text
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["schema"] == "repro.obs.run_summary/1"
        assert doc["manifest"]["command"] == f"simbench-{mode}"
        # n/nb ride in the manifest config so the warehouse derives nt
        assert doc["manifest"]["config"]["n"] == 8 * 128
        stats = doc["stats"]
        assert stats["n_tasks"] == 8 + 8 * 7 + 8 * 7 * 6 // 6
        assert stats["tasks_per_second"] > 0
        for key in ("makespan_seconds", "dag_build_seconds",
                    "schedule_seconds", "peak_rss_bytes", "peak_live_tasks"):
            assert key in stats

    def test_modes_agree_on_makespan(self, tmp_path):
        import json

        docs = {}
        for mode in ("materialize", "stream"):
            out = tmp_path / f"{mode}.json"
            assert main(["simbench", "--nt", "10", "--nb", "128",
                         "--mode", mode, "--metrics-out", str(out)]) == 0
            docs[mode] = json.loads(out.read_text(encoding="utf-8"))["stats"]
        assert (docs["stream"]["makespan_seconds"]
                == docs["materialize"]["makespan_seconds"])
        # at nt=10 the default window (floor 4096) spans the whole DAG,
        # so live counts merely must not exceed the materialised count;
        # the strict < comparison runs at nt=96 in benchmarks/
        assert (docs["stream"]["peak_live_tasks"]
                <= docs["materialize"]["peak_live_tasks"])
