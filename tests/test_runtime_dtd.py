"""Tests for Dynamic Task Discovery and its Cholesky front end."""

import numpy as np
import pytest

from repro.core import ConversionStrategy, build_cholesky_dag, build_precision_map, two_precision_map
from repro.core.dtd_cholesky import build_cholesky_dag_dtd
from repro.precision import Precision
from repro.runtime import execute_numeric
from repro.runtime.dtd import AccessMode, DataAccess, DTDRuntime
from repro.tiles.norms import tile_norms
from repro.tiles.tilematrix import TiledSymmetricMatrix


class TestDTDRuntime:
    def test_raw_dependency_inferred(self):
        rt = DTDRuntime()
        t0 = rt.insert_task("W", (0,), [DataAccess((0, 0), AccessMode.OUTPUT)])
        t1 = rt.insert_task("R", (1,), [
            DataAccess((0, 0), AccessMode.INPUT),
            DataAccess((1, 0), AccessMode.OUTPUT),
        ])
        g = rt.finalize()
        assert g.predecessors(t1.tid) == [t0.tid]

    def test_waw_creates_version_chain(self):
        rt = DTDRuntime()
        a = rt.insert_task("A", (0,), [DataAccess((0, 0), AccessMode.INOUT)])
        b = rt.insert_task("B", (1,), [DataAccess((0, 0), AccessMode.INOUT)])
        g = rt.finalize()
        assert a.output.version == 1
        assert b.output.version == 2
        assert g.predecessors(b.tid) == [a.tid]
        assert rt.current_version((0, 0)) == 2

    def test_unwritten_input_comes_from_host(self):
        rt = DTDRuntime()
        t = rt.insert_task("R", (0,), [
            DataAccess((3, 1), AccessMode.INPUT),
            DataAccess((0, 0), AccessMode.OUTPUT),
        ])
        rt.finalize()
        assert t.inputs[0].producer is None
        assert t.inputs[0].tile.version == 0

    def test_requires_exactly_one_write(self):
        rt = DTDRuntime()
        with pytest.raises(ValueError, match="exactly one"):
            rt.insert_task("X", (0,), [DataAccess((0, 0), AccessMode.INPUT)])
        with pytest.raises(ValueError, match="exactly one"):
            rt.insert_task("X", (0,), [
                DataAccess((0, 0), AccessMode.OUTPUT),
                DataAccess((1, 1), AccessMode.OUTPUT),
            ])

    def test_insert_after_finalize_rejected(self):
        rt = DTDRuntime()
        rt.insert_task("A", (0,), [DataAccess((0, 0), AccessMode.OUTPUT)])
        rt.finalize()
        with pytest.raises(RuntimeError):
            rt.insert_task("B", (1,), [DataAccess((1, 1), AccessMode.OUTPUT)])

    def test_output_mode_skips_dataflow(self):
        """OUTPUT (write-only) accesses don't read the previous version."""
        rt = DTDRuntime()
        rt.insert_task("A", (0,), [DataAccess((0, 0), AccessMode.INOUT)])
        t = rt.insert_task("B", (1,), [DataAccess((0, 0), AccessMode.OUTPUT)])
        rt.finalize()
        assert t.inputs == []  # no read; still versions after A via the map
        assert t.output.version == 2


def _canonical(graph):
    """Order-independent description of a task graph."""
    label = {t.tid: (t.kind, t.params) for t in graph}
    desc = {}
    for t in graph:
        inputs = tuple(
            (
                None if i.producer is None else label[i.producer],
                (i.tile.i, i.tile.j, i.tile.version),
                i.payload_precision,
                i.storage_precision,
                i.role,
            )
            for i in t.inputs
        )
        desc[(t.kind, t.params)] = (
            t.rank, t.precision, t.flops, (t.output.i, t.output.j, t.output.version),
            t.output_precision, t.sender_conversion, t.priority, inputs,
        )
    return desc


class TestDTDCholeskyEquivalence:
    @pytest.mark.parametrize("strategy", [ConversionStrategy.AUTO, ConversionStrategy.TTC])
    def test_same_graph_as_ptg_extreme(self, strategy):
        kmap = two_precision_map(5, Precision.FP16)
        ptg = build_cholesky_dag(5 * 16, 16, kmap, strategy=strategy)
        dtd = build_cholesky_dag_dtd(5 * 16, 16, kmap, strategy=strategy)
        assert _canonical(ptg.graph) == _canonical(dtd.graph)

    def test_same_graph_adaptive_map(self, matern_cov_160):
        kmap = build_precision_map(tile_norms(matern_cov_160), 1e-4)
        ptg = build_cholesky_dag(160, 20, kmap)
        dtd = build_cholesky_dag_dtd(160, 20, kmap)
        assert _canonical(ptg.graph) == _canonical(dtd.graph)

    def test_numeric_execution_identical(self, rng):
        a = rng.standard_normal((80, 80))
        mat = TiledSymmetricMatrix.from_dense(a @ a.T + 80 * np.eye(80), 16)
        kmap = two_precision_map(5, Precision.FP16_32)
        out_ptg = execute_numeric(build_cholesky_dag(80, 16, kmap).graph, mat)
        out_dtd = execute_numeric(build_cholesky_dag_dtd(80, 16, kmap).graph, mat)
        assert np.array_equal(out_ptg.lower_dense(), out_dtd.lower_dense())

    def test_size_validation(self):
        from repro.core import uniform_map

        with pytest.raises(ValueError):
            build_cholesky_dag_dtd(100, 16, uniform_map(5, Precision.FP64))
