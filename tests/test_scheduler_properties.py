"""Scheduler property battery: every policy, random DAGs, hard invariants.

Hypothesis generates arbitrary (non-Cholesky) task graphs — random
kinds, precisions, owning ranks, fan-in — and every registered
scheduling policy must uphold, on each of them:

1. **precedence** — no task starts before all its predecessors finish;
2. **lower bound** — the makespan is ≥ the kernel-only critical-path
   length of the graph (no policy can beat the longest chain);
3. **accounting** — the data-motion ledger rebuilt from the trace
   reconciles exactly against the simulator's own counters;
4. **determinism** — re-simulating the same graph under the same policy
   reproduces the event stream and makespan bit-for-bit;
5. **completeness** — every task is scheduled exactly once and the
   makespan is the last task completion.

Separately, the numeric executors must produce *identical numerics*
under every policy: ordering is pure preference, never arithmetic.

Example counts come from the hypothesis profile registered in
``conftest.py`` (``REPRO_HYPOTHESIS_PROFILE=quick|default|full``); the
heavier multi-node battery is marked ``slow``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.analysis.ledger import build_ledger
from repro.perfmodel import GPU_BY_NAME, NodeSpec
from repro.precision import Precision
from repro.runtime import (
    POLICY_NAMES,
    Platform,
    TaskGraph,
    TaskInput,
    TileRef,
    simulate,
)
from repro.runtime.policies import graph_cost_lower_bound, policy_topological_order

NB = 64
KINDS = ("POTRF", "TRSM", "SYRK", "GEMM")
PRECISIONS = (Precision.FP64, Precision.FP32, Precision.FP16_32)


@st.composite
def random_dags(draw, max_tasks: int = 16, max_ranks: int = 4):
    """A random finalized TaskGraph plus the rank count it targets.

    Task ``tid`` writes tile ``(tid, 0)`` version 1; sources read an
    original host tile ``(tid, 1)``; every edge's payload travels in the
    producer's output precision (what the simulator caches).
    """
    n = draw(st.integers(2, max_tasks))
    n_ranks = draw(st.sampled_from([r for r in (1, 2, 4) if r <= max_ranks]))
    graph = TaskGraph()
    for tid in range(n):
        kind = draw(st.sampled_from(KINDS))
        prec = draw(st.sampled_from(PRECISIONS))
        n_preds = draw(st.integers(0, min(3, tid)))
        preds = sorted(draw(st.permutations(range(tid)))[:n_preds]) if n_preds else []
        inputs = []
        for p in preds:
            producer = graph.tasks[p]
            inputs.append(TaskInput(
                producer=p,
                tile=producer.output,
                payload_precision=producer.output_precision,
                storage_precision=producer.output_precision,
                elements=NB * NB,
            ))
        if not inputs:
            inputs.append(TaskInput(
                producer=None,
                tile=TileRef(tid, 1, 0),
                payload_precision=prec,
                storage_precision=prec,
                elements=NB * NB,
            ))
        graph.new_task(
            kind=kind,
            params=(tid,),
            rank=draw(st.integers(0, n_ranks - 1)),
            precision=prec,
            flops=float(draw(st.integers(1, 50))) * 1e6,
            output=TileRef(tid, 0, 1),
            output_precision=prec,
            inputs=inputs,
            priority=draw(st.integers(0, 8)),
        )
    graph.finalize()
    return graph, n_ranks


def _platform(n_ranks: int, n_nodes: int = 1) -> Platform:
    gpus_per_node = max(1, n_ranks // n_nodes)
    node = NodeSpec("prop", GPU_BY_NAME["V100"], gpus_per_node, 256e9, 25e9, 1.5e-6)
    return Platform(node=node, n_nodes=n_nodes)


def _event_tuples(trace):
    return sorted(
        (e.rank, e.engine, e.kind, e.t_start, e.t_end,
         e.precision, e.bytes, e.flops, e.site)
        for e in trace.events
    )


@pytest.mark.parametrize("policy", POLICY_NAMES)
class TestPolicyInvariants:
    """The four core invariants, each policy, random DAGs."""

    @given(data=random_dags())
    @settings(deadline=None)
    def test_precedence_respected(self, policy, data):
        graph, n_ranks = data
        rep = simulate(graph, _platform(n_ranks), NB, policy=policy)
        starts = rep.task_start
        for task in graph:
            for p in graph.predecessors(task.tid):
                assert starts[task.tid] >= rep.task_end[p] - 1e-12, (
                    f"task {task.tid} started at {starts[task.tid]} before "
                    f"predecessor {p} finished at {rep.task_end[p]}"
                )

    @given(data=random_dags())
    @settings(deadline=None)
    def test_makespan_at_least_critical_path(self, policy, data):
        graph, n_ranks = data
        platform = _platform(n_ranks)
        rep = simulate(graph, platform, NB, policy=policy)
        bound = graph_cost_lower_bound(graph, platform, NB)
        assert rep.makespan >= bound - 1e-12

    @given(data=random_dags())
    @settings(deadline=None)
    def test_ledger_reconciles(self, policy, data):
        graph, n_ranks = data
        rep = simulate(graph, _platform(n_ranks), NB, policy=policy)
        ledger = build_ledger(events=rep.trace.events)
        assert ledger.reconcile(rep.stats) == []

    @given(data=random_dags())
    @settings(deadline=None)
    def test_deterministic_replay(self, policy, data):
        graph, n_ranks = data
        platform = _platform(n_ranks)
        a = simulate(graph, platform, NB, policy=policy)
        b = simulate(graph, platform, NB, policy=policy)
        assert a.makespan == b.makespan
        assert a.task_end == b.task_end
        assert a.task_start == b.task_start
        assert _event_tuples(a.trace) == _event_tuples(b.trace)

    @given(data=random_dags())
    @settings(deadline=None)
    def test_all_tasks_scheduled_once(self, policy, data):
        graph, n_ranks = data
        rep = simulate(graph, _platform(n_ranks), NB, policy=policy)
        assert len(rep.task_end) == len(graph)
        assert rep.makespan == pytest.approx(max(rep.task_end))
        compute = [e for e in rep.trace.events
                   if e.engine == "compute" and e.kind in KINDS]
        assert len(compute) == len(graph)
        assert rep.policy == policy

    @given(data=random_dags())
    @settings(deadline=None)
    def test_topological_order_is_valid(self, policy, data):
        graph, _ = data
        order = policy_topological_order(graph, policy, nb=NB)
        assert sorted(order) == list(range(len(graph)))
        position = {tid: i for i, tid in enumerate(order)}
        for task in graph:
            for p in graph.predecessors(task.tid):
                assert position[p] < position[task.tid]


@pytest.mark.slow
@pytest.mark.parametrize("policy", POLICY_NAMES)
class TestPolicyInvariantsMultiNode:
    """The same battery on bigger DAGs across a 2-node platform (NIC paths)."""

    @given(data=random_dags(max_tasks=28, max_ranks=4))
    @settings(deadline=None)
    def test_precedence_bound_and_ledger(self, policy, data):
        graph, n_ranks = data
        platform = _platform(max(2, n_ranks), n_nodes=2)
        rep = simulate(graph, platform, NB, policy=policy)
        for task in graph:
            for p in graph.predecessors(task.tid):
                assert rep.task_start[task.tid] >= rep.task_end[p] - 1e-12
        assert rep.makespan >= graph_cost_lower_bound(graph, platform, NB) - 1e-12
        assert build_ledger(events=rep.trace.events).reconcile(rep.stats) == []


class TestNumericInvariance:
    """Execution order is preference, not arithmetic: results are bitwise
    identical across every policy and the sequential reference."""

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_parallel_executor_matches_sequential(self, policy, tiled_96):
        from repro.core import build_cholesky_dag, two_precision_map
        from repro.runtime import execute_numeric, execute_numeric_parallel

        kmap = two_precision_map(6, Precision.FP16_32)
        dag = build_cholesky_dag(96, 16, kmap)
        seq = execute_numeric(dag.graph, tiled_96)
        par = execute_numeric_parallel(dag.graph, tiled_96, n_threads=4, policy=policy)
        assert np.array_equal(par.lower_dense(), seq.lower_dense())

    def test_simulated_flops_identical_across_policies(self):
        from repro.core import simulate_cholesky, two_precision_map

        platform = _platform(2)
        kmap = two_precision_map(16, Precision.FP16_32)
        reports = {
            pol: simulate_cholesky(2048, 128, kmap, platform, policy=pol)
            for pol in POLICY_NAMES
        }
        tasks = {rep.stats.n_tasks for rep in reports.values()}
        assert len(tasks) == 1
        base = reports["panel-first"].stats.total_flops
        for rep in reports.values():
            # same tasks, summed in schedule order: equal up to rounding
            assert rep.stats.total_flops == pytest.approx(base, rel=1e-12)
