"""Unit tests for the GPU/node/cluster specifications."""

import pytest

from repro.perfmodel.gpus import (
    A100,
    GPU_BY_NAME,
    GUYOT_NODE,
    H100,
    HAXANE_NODE,
    SUMMIT,
    SUMMIT_NODE,
    V100,
    ClusterSpec,
)
from repro.precision import Precision


class TestPeaks:
    def test_table1_v100(self):
        assert V100.peak(Precision.FP64) == 7.8e12
        assert V100.peak(Precision.FP32) == 15.7e12
        assert V100.peak(Precision.FP16) == 125e12

    def test_table1_a100_h100_fp64_tensor(self):
        # FP64 runs on tensor cores on A100/H100 → shares the FP32 peak
        assert A100.peak(Precision.FP64) == A100.peak(Precision.FP32) == 19.5e12
        assert H100.peak(Precision.FP64) == H100.peak(Precision.FP32) == 51.2e12

    def test_generation_scaling(self):
        for prec in (Precision.FP64, Precision.FP16, Precision.TF32):
            assert V100.peak(prec) <= A100.peak(prec) <= H100.peak(prec)

    def test_registry(self):
        assert GPU_BY_NAME["V100"] is V100
        assert set(GPU_BY_NAME) == {"V100", "A100", "H100"}


class TestSustainedRate:
    def test_saturating_with_size(self):
        rates = [V100.sustained_gemm_rate(Precision.FP16, n) for n in (128, 512, 2048, 8192)]
        assert all(a < b for a, b in zip(rates, rates[1:]))
        assert rates[-1] < V100.peak(Precision.FP16)

    def test_half_rate_at_half_perf_size(self):
        n_half = V100.half_perf_size[Precision.FP64]
        r = V100.sustained_gemm_rate(Precision.FP64, n_half)
        r_sus = V100.peak(Precision.FP64) * V100.sustained_fraction[Precision.FP64]
        assert r == pytest.approx(r_sus / 2)

    def test_large_tile_near_sustained(self):
        r = A100.sustained_gemm_rate(Precision.FP64, 4096)
        r_sus = A100.peak(Precision.FP64) * A100.sustained_fraction[Precision.FP64]
        assert r > 0.99 * r_sus

    def test_tensor_formats_saturate_later(self):
        # at a small tile, FP16's fraction of its sustained rate is lower
        def frac(gpu, prec, n):
            sus = gpu.peak(prec) * gpu.sustained_fraction[prec]
            return gpu.sustained_gemm_rate(prec, n) / sus

        assert frac(A100, Precision.FP16, 512) < frac(A100, Precision.FP64, 512)


class TestPower:
    def test_idle_below_compute(self):
        for gpu in (V100, A100, H100):
            for prec in Precision:
                assert gpu.idle_power < gpu.compute_power(prec) <= gpu.tdp_watts

    def test_lower_precision_draws_less(self):
        for gpu in (V100, A100, H100):
            assert gpu.compute_power(Precision.FP16) < gpu.compute_power(Precision.FP64)


class TestNodes:
    def test_summit_node(self):
        assert SUMMIT_NODE.gpus_per_node == 6
        assert SUMMIT_NODE.gpu is V100
        assert SUMMIT_NODE.total_gpu_memory == 6 * 16e9

    def test_guyot_haxane(self):
        assert GUYOT_NODE.gpus_per_node == 8 and GUYOT_NODE.gpu is A100
        assert HAXANE_NODE.gpus_per_node == 1 and HAXANE_NODE.gpu is H100
        assert HAXANE_NODE.host_memory_bytes == 63e9  # the paper's limiting factor

    def test_cluster(self):
        assert SUMMIT.gpus(64) == 384
        assert SUMMIT.max_nodes == 4356
        small = ClusterSpec("test", SUMMIT_NODE, 2)
        assert small.gpus(2) == 12
