"""Additional CLI coverage: exact mode, sqexp nugget defaults, fig benches."""

import pytest

from repro.cli import main


class TestMLEVariants:
    def test_exact_flag(self, capsys):
        assert main(["mle", "--model", "2d-matern", "--n", "49",
                     "--accuracy", "1e-2", "--exact"]) == 0
        out = capsys.readouterr().out
        assert "exact" in out and "1e-02" in out

    def test_sqexp_gets_default_nugget(self, capsys):
        assert main(["mle", "--model", "2d-sqexp", "--n", "49"]) == 0
        out = capsys.readouterr().out
        assert "nugget=0.01" in out

    def test_nugget_override(self, capsys):
        assert main(["mle", "--model", "3d-sqexp", "--n", "27",
                     "--nugget", "0.05"]) == 0
        assert "nugget=0.05" in capsys.readouterr().out


class TestBenchTargets:
    def test_fig1(self, capsys):
        assert main(["bench", "fig1", "--gpu", "A100"]) == 0
        out = capsys.readouterr().out
        assert "A100" in out and "FP16" in out

    def test_fig7(self, capsys):
        assert main(["bench", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "2D-sqexp" in out and "3D-sqexp" in out


class TestMapsAccuracyOverride:
    def test_override_changes_fractions(self, capsys):
        main(["maps", "--app", "2d-matern", "--n", "8192", "--nb", "1024"])
        base = capsys.readouterr().out
        main(["maps", "--app", "2d-matern", "--n", "8192", "--nb", "1024",
              "--accuracy", "1e-1"])
        loose = capsys.readouterr().out
        assert base != loose
        assert "u_req=0.1" in loose


class TestSimulateConfigs:
    @pytest.mark.parametrize("config", ["FP64", "FP32", "FP64/FP16_32"])
    def test_all_configs_run(self, config, capsys):
        assert main(["simulate", "--n", "4096", "--nb", "1024",
                     "--config", config]) == 0
        assert "Tflop/s" in capsys.readouterr().out

    def test_multi_node(self, capsys):
        assert main(["simulate", "--n", "8192", "--nb", "1024",
                     "--gpus", "2", "--nodes", "2"]) == 0
        assert "2x2x" in capsys.readouterr().out


class TestScheduleCompare:
    def test_table_and_verdicts(self, capsys):
        assert main(["schedule-compare", "--n", "2048", "--nb", "128"]) == 0
        out = capsys.readouterr().out
        for name in ("panel-first", "fifo", "critical-path", "comm-aware-eft"):
            assert name in out
        assert "energy_j" in out and "makespan_s" in out
        assert "policy:panel-first" in out  # regression-sentinel diff headers

    def test_report_out_and_policy_subset(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "verdict.json"
        assert main(["schedule-compare", "--n", "1024", "--nb", "256",
                     "--policy", "fifo", "--policy", "critical-path",
                     "--report-out", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == "repro.obs.regress/1+multi"
        assert doc["baseline_policy"] == "panel-first"
        assert set(doc["metrics"]) == {"panel-first", "fifo", "critical-path"}
        assert all("energy_joules" in m for m in doc["metrics"].values())
        assert [r["schema"] for r in doc["reports"]] == ["repro.obs.regress/1"] * 2

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["schedule-compare", "--policy", "yolo"])

    def test_simulate_policy_flag_and_trace_metadata(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.json"
        assert main(["simulate", "--n", "2048", "--nb", "256",
                     "--policy", "critical-path",
                     "--trace-out", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "policy critical-path" in out
        doc = json.loads(trace.read_text())
        assert doc["metadata"] == {"policy": "critical-path"}

    def test_sweep_policy_axis(self, tmp_path, capsys):
        assert main(["sweep", "--n", "1024", "--nb", "256",
                     "--policy", "panel-first", "--policy", "fifo",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--name", "pol-axis"]) == 0
        out = capsys.readouterr().out
        assert "panel-first" in out and "fifo" in out
