"""Additional CLI coverage: exact mode, sqexp nugget defaults, fig benches."""

import pytest

from repro.cli import main


class TestMLEVariants:
    def test_exact_flag(self, capsys):
        assert main(["mle", "--model", "2d-matern", "--n", "49",
                     "--accuracy", "1e-2", "--exact"]) == 0
        out = capsys.readouterr().out
        assert "exact" in out and "1e-02" in out

    def test_sqexp_gets_default_nugget(self, capsys):
        assert main(["mle", "--model", "2d-sqexp", "--n", "49"]) == 0
        out = capsys.readouterr().out
        assert "nugget=0.01" in out

    def test_nugget_override(self, capsys):
        assert main(["mle", "--model", "3d-sqexp", "--n", "27",
                     "--nugget", "0.05"]) == 0
        assert "nugget=0.05" in capsys.readouterr().out


class TestBenchTargets:
    def test_fig1(self, capsys):
        assert main(["bench", "fig1", "--gpu", "A100"]) == 0
        out = capsys.readouterr().out
        assert "A100" in out and "FP16" in out

    def test_fig7(self, capsys):
        assert main(["bench", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "2D-sqexp" in out and "3D-sqexp" in out


class TestMapsAccuracyOverride:
    def test_override_changes_fractions(self, capsys):
        main(["maps", "--app", "2d-matern", "--n", "8192", "--nb", "1024"])
        base = capsys.readouterr().out
        main(["maps", "--app", "2d-matern", "--n", "8192", "--nb", "1024",
              "--accuracy", "1e-1"])
        loose = capsys.readouterr().out
        assert base != loose
        assert "u_req=0.1" in loose


class TestSimulateConfigs:
    @pytest.mark.parametrize("config", ["FP64", "FP32", "FP64/FP16_32"])
    def test_all_configs_run(self, config, capsys):
        assert main(["simulate", "--n", "4096", "--nb", "1024",
                     "--config", config]) == 0
        assert "Tflop/s" in capsys.readouterr().out

    def test_multi_node(self, capsys):
        assert main(["simulate", "--n", "8192", "--nb", "1024",
                     "--gpus", "2", "--nodes", "2"]) == 0
        assert "2x2x" in capsys.readouterr().out
