"""Tests for the sampling wall-clock profiler and hot-region hooks."""

import json
import time

import pytest

from repro.obs.profile import (
    _NULL_REGION,
    PROFILE_SCHEMA,
    SamplingProfiler,
    active_profiler,
    hot_region,
    write_profile,
)


def _spin(seconds: float) -> int:
    """Burn wall time in a frame the sampler can attribute."""
    t0 = time.perf_counter()
    total = 0
    while time.perf_counter() - t0 < seconds:
        total += sum(range(200))
    return total


class TestHotRegion:
    def test_null_region_when_inactive(self):
        assert active_profiler() is None
        assert hot_region("anything") is _NULL_REGION
        assert hot_region("other") is _NULL_REGION  # shared singleton
        with hot_region("noop"):
            pass  # no profiler, no effect

    def test_regions_recorded_while_active(self):
        with SamplingProfiler(0.01) as prof:
            assert active_profiler() is prof
            for _ in range(3):
                with hot_region("test.region"):
                    _spin(0.002)
        assert active_profiler() is None
        calls, seconds = prof.regions["test.region"]
        assert calls == 3
        assert seconds > 0.0

    def test_nested_profilers_restore_previous(self):
        outer = SamplingProfiler(0.05).start()
        try:
            inner = SamplingProfiler(0.05).start()
            assert active_profiler() is inner
            inner.stop()
            assert active_profiler() is outer
        finally:
            outer.stop()
        assert active_profiler() is None


class TestSamplingProfiler:
    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            SamplingProfiler(0.0)

    def test_double_start_raises(self):
        prof = SamplingProfiler(0.05).start()
        try:
            with pytest.raises(RuntimeError):
                prof.start()
        finally:
            prof.stop()

    def test_collects_samples_and_top_frames(self):
        with SamplingProfiler(0.001) as prof:
            _spin(0.1)
        assert prof.n_samples > 0
        frames = prof.top_frames(10)
        assert 0 < len(frames) <= 10
        for f in frames:
            assert 0.0 <= f["self_fraction"] <= 1.0
            assert f["self_samples"] <= f["cum_samples"]
        # the spin loop should dominate the self samples
        assert any(f["function"] == "_spin" for f in frames)

    def test_overhead_is_measured_and_small(self):
        with SamplingProfiler(0.002) as prof:
            _spin(0.1)
        assert prof.overhead_seconds >= 0.0
        # the sampler only walks one short stack per tick; even a 2 ms
        # interval stays well under the 5 % acceptance bar
        assert prof.overhead_fraction < 0.05

    def test_report_document(self, tmp_path):
        with SamplingProfiler(0.002) as prof:
            with hot_region("r1"):
                _spin(0.02)
        doc = prof.report(top=5, extra={"tasks_per_second": 1234.5})
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["n_samples"] == prof.n_samples
        assert doc["tasks_per_second"] == 1234.5
        assert len(doc["top_frames"]) <= 5
        regions = {r["name"]: r for r in doc["hot_regions"]}
        assert regions["r1"]["calls"] == 1
        assert 0.0 <= regions["r1"]["fraction"] <= 1.0
        path = write_profile(tmp_path / "prof.json", doc)
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded["schema"] == PROFILE_SCHEMA

    def test_render_includes_overhead_and_regions(self):
        with SamplingProfiler(0.002) as prof:
            with hot_region("r.render"):
                _spin(0.02)
        text = prof.render(top=3)
        assert "measured overhead" in text
        assert "r.render" in text

    def test_render_with_zero_samples(self):
        prof = SamplingProfiler(10.0).start()
        prof.stop()
        assert "0 samples" in prof.render()


class TestSimulatorIntegration:
    def test_simulator_hot_regions_fire(self):
        from repro.core import simulate_cholesky, uniform_map
        from repro.perfmodel import GPU_BY_NAME, NodeSpec
        from repro.precision import Precision
        from repro.runtime import Platform

        node = NodeSpec("t", GPU_BY_NAME["V100"], 1, 256e9, 25e9, 1.5e-6)
        platform = Platform(node=node, n_nodes=1)
        with SamplingProfiler(0.005) as prof:
            simulate_cholesky(2048, 256, uniform_map(8, Precision.FP64), platform)
        assert "sim.ready_heap_loop" in prof.regions
        assert "dag.build" in prof.regions
        assert prof.regions["sim.ready_heap_loop"][1] > 0.0
