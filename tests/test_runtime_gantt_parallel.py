"""Tests for trace export (Gantt/Chrome) and the threaded executor."""

import json

import numpy as np
import pytest

from repro.core import build_cholesky_dag, build_precision_map, two_precision_map
from repro.core.solver import simulate_cholesky
from repro.perfmodel import V100
from repro.precision import Precision
from repro.runtime import Platform, execute_numeric
from repro.runtime.gantt import ascii_gantt, engine_utilisation, to_chrome_trace
from repro.runtime.parallel_executor import execute_numeric_parallel
from repro.tiles.norms import tile_norms
from repro.tiles.tilematrix import TiledSymmetricMatrix


@pytest.fixture(scope="module")
def sim_report():
    kmap = two_precision_map(6, Precision.FP16)
    platform = Platform.single_gpu(V100)
    return simulate_cholesky(6 * 512, 512, kmap, platform, record_events=True)


class TestGantt:
    def test_ascii_gantt_structure(self, sim_report):
        out = ascii_gantt(sim_report.trace.events, sim_report.makespan, width=60)
        lines = out.splitlines()
        assert any("compute" in l for l in lines)
        assert any("h2d" in l for l in lines)
        assert "G" in out  # GEMMs visible
        assert "legend" not in out.lower() or True

    def test_empty_trace(self):
        assert "empty" in ascii_gantt([])

    def test_chrome_trace_valid_json(self, sim_report):
        payload = json.loads(to_chrome_trace(sim_report.trace.events))
        events = payload["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == len(sim_report.trace.events)
        sample = slices[0]
        assert set(sample) >= {"name", "ph", "ts", "dur", "pid", "tid"}
        assert all(e["dur"] >= 0 for e in slices)
        # slices are sorted by timestamp for stable output
        assert [e["ts"] for e in slices] == sorted(e["ts"] for e in slices)
        # process/thread naming metadata for Perfetto row labels
        meta = {(e["name"], e.get("pid"), e.get("tid")) for e in events if e["ph"] == "M"}
        assert ("process_name", 0, None) in meta
        assert any(name == "thread_name" for name, _pid, _tid in meta)

    def test_utilisation(self, sim_report):
        util = engine_utilisation(sim_report.trace.events, sim_report.makespan)
        assert 0.5 < util[(0, "compute")] <= 1.0
        assert all(0.0 <= v <= 1.0 for v in util.values())


class TestParallelExecutor:
    def _mat(self, rng, n=96, nb=16):
        a = rng.standard_normal((n, n))
        return TiledSymmetricMatrix.from_dense(a @ a.T + n * np.eye(n), nb)

    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_matches_sequential(self, rng, threads):
        mat = self._mat(rng)
        kmap = build_precision_map(tile_norms(mat), 1e-4)
        dag = build_cholesky_dag(96, 16, kmap)
        seq = execute_numeric(dag.graph, mat)
        par = execute_numeric_parallel(dag.graph, mat, n_threads=threads)
        assert np.array_equal(par.lower_dense(), seq.lower_dense())

    def test_fp64_correct(self, rng):
        mat = self._mat(rng)
        from repro.core import uniform_map

        dag = build_cholesky_dag(96, 16, uniform_map(6, Precision.FP64))
        out = execute_numeric_parallel(dag.graph, mat, n_threads=3)
        l = out.lower_dense()
        assert np.allclose(l @ l.T, mat.to_dense())

    def test_error_propagates(self, rng):
        mat = self._mat(rng)
        from repro.core import uniform_map

        dag = build_cholesky_dag(96, 16, uniform_map(6, Precision.FP64))
        dag.graph.tasks[3].kind = "BROKEN"
        with pytest.raises(ValueError, match="unknown task kind"):
            execute_numeric_parallel(dag.graph, mat, n_threads=2)

    def test_invalid_threads(self, rng):
        mat = self._mat(rng)
        from repro.core import uniform_map

        dag = build_cholesky_dag(96, 16, uniform_map(6, Precision.FP64))
        with pytest.raises(ValueError):
            execute_numeric_parallel(dag.graph, mat, n_threads=0)

    def test_input_unmodified(self, rng):
        mat = self._mat(rng)
        before = mat.to_dense()
        from repro.core import uniform_map

        dag = build_cholesky_dag(96, 16, uniform_map(6, Precision.FP64))
        execute_numeric_parallel(dag.graph, mat, n_threads=4)
        assert np.array_equal(mat.to_dense(), before)
