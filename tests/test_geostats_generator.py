"""Unit tests for synthetic fields and tiled covariance assembly."""

import numpy as np
import pytest

from repro.geostats.covariance import Matern
from repro.geostats.generator import Dataset, SyntheticField, build_tiled_covariance
from repro.geostats.locations import generate_locations
from repro.precision import Precision


class TestDataset:
    def test_valid(self, small_field):
        ds = small_field.sample()
        assert ds.n == 144
        assert ds.theta_true == small_field.theta

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError, match="locations but"):
            Dataset(np.zeros((5, 2)), np.zeros(4), Matern(dim=2))

    def test_dim_mismatch(self):
        with pytest.raises(ValueError, match="2D but"):
            Dataset(np.zeros((5, 3)), np.zeros(5), Matern(dim=2))

    def test_non_2d_locations(self):
        with pytest.raises(ValueError, match=r"\(n, dim\)"):
            Dataset(np.zeros(5), np.zeros(5), Matern(dim=2))


class TestSyntheticField:
    def test_replicas_share_locations_differ_in_z(self, small_field):
        a, b = small_field.replicas(2)
        assert np.array_equal(a.locations, b.locations)
        assert not np.array_equal(a.z, b.z)

    def test_sample_deterministic(self, small_field):
        assert np.array_equal(small_field.sample(3).z, small_field.sample(3).z)

    def test_sample_statistics(self):
        """Marginal variance of z matches σ² across replicas."""
        field = SyntheticField.matern_2d(n=100, variance=1.5, range_=0.05, seed=1)
        zs = np.array([field.sample(r).z for r in range(200)])
        var = zs.var(axis=0).mean()
        assert var == pytest.approx(1.5, rel=0.15)

    def test_constructors(self):
        assert SyntheticField.sqexp_2d(10).model.dim == 2
        assert SyntheticField.sqexp_3d(10).model.dim == 3
        assert SyntheticField.matern_2d(10).model.name == "2D-Matern"

    def test_nugget_carried_to_dataset(self):
        field = SyntheticField.sqexp_2d(64, nugget=0.01)
        assert field.sample().nugget == 0.01

    def test_nugget_inflates_variance(self):
        base = SyntheticField.sqexp_2d(100, range_=0.05, seed=2, nugget=0.0)
        noisy = SyntheticField.sqexp_2d(100, range_=0.05, seed=2, nugget=0.5)
        zb = np.array([base.sample(r).z for r in range(100)])
        zn = np.array([noisy.sample(r).z for r in range(100)])
        assert zn.var() > zb.var() + 0.2


class TestBuildTiledCovariance:
    def test_matches_dense(self):
        locs = generate_locations(60, 2, seed=0)
        model = Matern(dim=2)
        theta = (1.0, 0.1, 0.5)
        tiled = build_tiled_covariance(locs, model, theta, 16)
        dense = model.cov_matrix(locs, theta)
        assert np.allclose(tiled.to_dense(), dense)

    def test_nugget_on_diagonal_only(self):
        locs = generate_locations(40, 2, seed=0)
        model = Matern(dim=2)
        plain = build_tiled_covariance(locs, model, (1.0, 0.1, 0.5), 10)
        lifted = build_tiled_covariance(locs, model, (1.0, 0.1, 0.5), 10, nugget=0.25)
        diff = lifted.to_dense() - plain.to_dense()
        assert np.allclose(diff, 0.25 * np.eye(40), atol=1e-7)

    def test_kernel_precision_storage(self):
        locs = generate_locations(40, 2, seed=0)
        model = Matern(dim=2)
        tiled = build_tiled_covariance(
            locs, model, (1.0, 0.05, 0.5), 10,
            kernel_precision=lambda i, j: Precision.FP64 if i == j else Precision.FP16,
        )
        assert tiled.tiles[(0, 0)].dtype == np.float64
        assert tiled.tiles[(2, 0)].dtype == np.float32
