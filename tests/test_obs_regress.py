"""The regression sentinel: metric diffing, thresholds, compare CLI."""

import json

import pytest

from repro.obs.regress import (
    DEFAULT_THRESHOLDS,
    Threshold,
    compare_docs,
    compare_files,
    load_metric_scopes,
    parse_threshold_args,
)


def _stats_doc(**overrides) -> dict:
    doc = {
        "makespan_seconds": 1.0,
        "tflops": 20.0,
        "h2d_bytes": 1_000_000,
        "d2h_bytes": 500_000,
        "nic_bytes": 0,
        "n_conversions": 40,
        "conversion_seconds": 0.01,
        "n_evictions": 0,
        "plan_seconds": 0.3,  # noisy: never compared
    }
    doc.update(overrides)
    return doc


def _bench_doc(makespan=1.0, tflops=20.0, failed=False) -> dict:
    return {
        "schema": "repro.bench/1",
        "name": "t",
        "n_runs": 1,
        "n_failed": int(failed),
        "aggregates": {
            "best_tflops": tflops,
            "total_sim_makespan_seconds": makespan,
            "total_plan_seconds": 0.2,
        },
        "runs": [
            {
                "key": "abc",
                "cached": False,
                "failed": failed,
                "spec": {"config": "FP64", "strategy": "auto", "n": 1024,
                         "nb": 256, "gpu": "V100"},
                "metrics": ({} if failed
                            else {"makespan_seconds": makespan, "tflops": tflops}),
            }
        ],
    }


class TestLoadScopes:
    def test_bench_doc_scopes(self):
        scopes = load_metric_scopes(_bench_doc())
        assert "aggregate" in scopes
        assert scopes["aggregate"]["best_tflops"] == 20.0
        assert scopes["aggregate"]["n_failed"] == 0
        assert "total_plan_seconds" not in scopes["aggregate"]  # noisy
        label = "FP64/auto/1024/256/V100"
        assert scopes[label]["makespan_seconds"] == 1.0

    def test_failed_runs_are_skipped(self):
        scopes = load_metric_scopes(_bench_doc(failed=True))
        assert list(scopes) == ["aggregate"]

    def test_run_summary_doc(self):
        doc = {"schema": "repro.obs.run_summary/1", "stats": _stats_doc()}
        scopes = load_metric_scopes(doc)
        assert scopes["run"]["makespan_seconds"] == 1.0
        assert "plan_seconds" not in scopes["run"]

    def test_bare_stats_doc(self):
        assert load_metric_scopes(_stats_doc())["run"]["tflops"] == 20.0

    def test_unsupported_doc_raises(self):
        with pytest.raises(ValueError, match="unsupported document"):
            load_metric_scopes({"hello": "world"})


class TestCompare:
    def test_identical_docs_have_zero_regressions(self):
        report = compare_docs(_stats_doc(), _stats_doc())
        assert report.verdict == "ok"
        assert report.n_regressions == 0
        assert report.improvements == []
        assert all(d.rel_delta == 0.0 for d in report.deltas)

    def test_makespan_increase_regresses(self):
        report = compare_docs(_stats_doc(), _stats_doc(makespan_seconds=1.05))
        assert report.verdict == "regressed"
        (delta,) = report.regressions
        assert delta.metric == "makespan_seconds"
        assert delta.rel_delta == pytest.approx(0.05)

    def test_makespan_decrease_improves_without_failing(self):
        report = compare_docs(_stats_doc(), _stats_doc(makespan_seconds=0.9))
        assert report.verdict == "ok"
        assert [d.metric for d in report.improvements] == ["makespan_seconds"]

    def test_tflops_drop_regresses_higher_is_better(self):
        report = compare_docs(_stats_doc(), _stats_doc(tflops=18.0))
        assert [d.metric for d in report.regressions] == ["tflops"]

    def test_within_threshold_is_ok(self):
        report = compare_docs(_stats_doc(), _stats_doc(makespan_seconds=1.01))
        assert report.verdict == "ok"

    def test_zero_tolerance_bytes_regress_on_any_increase(self):
        report = compare_docs(_stats_doc(), _stats_doc(h2d_bytes=1_000_001))
        assert [d.metric for d in report.regressions] == ["h2d_bytes"]
        report = compare_docs(_stats_doc(), _stats_doc(h2d_bytes=999_999))
        assert report.verdict == "ok"
        assert [d.metric for d in report.improvements] == ["h2d_bytes"]

    def test_zero_baseline_increase_is_infinite_regression(self):
        report = compare_docs(_stats_doc(), _stats_doc(nic_bytes=100))
        (delta,) = report.regressions
        assert delta.metric == "nic_bytes"
        assert delta.to_dict()["rel_delta"] is None  # inf sanitized for JSON

    def test_threshold_override_tolerates(self):
        report = compare_docs(
            _stats_doc(), _stats_doc(makespan_seconds=1.05),
            thresholds={**DEFAULT_THRESHOLDS,
                        "makespan_seconds": Threshold(0.10, "lower")},
        )
        assert report.verdict == "ok"

    def test_unthresholded_metrics_never_gate(self):
        report = compare_docs(_stats_doc(custom=1.0), _stats_doc(custom=99.0))
        assert "custom" not in {d.metric for d in report.deltas}

    def test_scope_drift_is_reported(self):
        base = _bench_doc()
        cand = _bench_doc()
        cand["runs"][0]["spec"]["n"] = 2048
        report = compare_docs(base, cand)
        assert report.missing_in_candidate == ["FP64/auto/1024/256/V100"]
        assert report.added_in_candidate == ["FP64/auto/2048/256/V100"]

    def test_table_renders_verdict(self):
        report = compare_docs(_stats_doc(), _stats_doc(makespan_seconds=2.0))
        text = report.table()
        assert "verdict REGRESSED" in text and "makespan_seconds" in text
        ok = compare_docs(_stats_doc(), _stats_doc())
        assert "verdict OK" in ok.table()

    def test_to_dict_schema(self):
        doc = compare_docs(_stats_doc(), _stats_doc(tflops=10.0)).to_dict()
        assert doc["schema"] == "repro.obs.regress/1"
        assert doc["verdict"] == "regressed"
        assert doc["n_regressions"] == 1
        json.dumps(doc)  # strictly serialisable


class TestThresholdParsing:
    def test_defaults_pass_through(self):
        assert parse_threshold_args(None) == DEFAULT_THRESHOLDS

    def test_override_and_new_metric(self):
        thresholds = parse_threshold_args(
            ["makespan_seconds=0.5", "my_metric=0.1:higher"]
        )
        assert thresholds["makespan_seconds"] == Threshold(0.5, "lower")
        assert thresholds["my_metric"] == Threshold(0.1, "higher")

    def test_bad_spec_raises(self):
        with pytest.raises(ValueError, match="METRIC=REL"):
            parse_threshold_args(["nonsense"])
        with pytest.raises(ValueError, match="direction"):
            parse_threshold_args(["m=0.1:sideways"])
        with pytest.raises(ValueError, match="non-negative"):
            parse_threshold_args(["m=-0.1"])


class TestCompareFilesAndCLI:
    def _write(self, path, doc):
        path.write_text(json.dumps(doc), encoding="utf-8")
        return str(path)

    def test_compare_files(self, tmp_path):
        base = self._write(tmp_path / "base.json", _stats_doc())
        cand = self._write(tmp_path / "cand.json", _stats_doc(makespan_seconds=2.0))
        report = compare_files(base, cand)
        assert report.verdict == "regressed"
        assert report.baseline == base and report.candidate == cand

    def test_cli_identical_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        base = self._write(tmp_path / "base.json", _stats_doc())
        cand = self._write(tmp_path / "cand.json", _stats_doc())
        rc = main(["compare", base, cand, "--fail-on-regress"])
        assert rc == 0
        assert "verdict OK" in capsys.readouterr().out

    def test_cli_regression_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        base = self._write(tmp_path / "base.json", _stats_doc())
        cand = self._write(tmp_path / "cand.json", _stats_doc(makespan_seconds=2.0))
        report_out = tmp_path / "verdict.json"
        rc = main(["compare", base, cand, "--fail-on-regress",
                   "--report-out", str(report_out)])
        assert rc == 1
        captured = capsys.readouterr()
        assert "regression(s) beyond threshold" in captured.err
        doc = json.loads(report_out.read_text())
        assert doc["verdict"] == "regressed"

    def test_cli_regression_without_gate_exits_zero(self, tmp_path):
        from repro.cli import main

        base = self._write(tmp_path / "base.json", _stats_doc())
        cand = self._write(tmp_path / "cand.json", _stats_doc(makespan_seconds=2.0))
        assert main(["compare", base, cand]) == 0

    def test_cli_threshold_override(self, tmp_path):
        from repro.cli import main

        base = self._write(tmp_path / "base.json", _stats_doc())
        cand = self._write(tmp_path / "cand.json", _stats_doc(makespan_seconds=1.05))
        assert main(["compare", base, cand, "--fail-on-regress"]) == 1
        assert main(["compare", base, cand, "--fail-on-regress",
                     "--threshold", "makespan_seconds=0.10"]) == 0

    def test_cli_missing_file_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        base = self._write(tmp_path / "base.json", _stats_doc())
        rc = main(["compare", base, str(tmp_path / "nope.json")])
        assert rc == 2
        assert "no such file" in capsys.readouterr().err

    def test_cli_multiple_candidates(self, tmp_path):
        from repro.cli import main

        base = self._write(tmp_path / "base.json", _stats_doc())
        good = self._write(tmp_path / "good.json", _stats_doc())
        bad = self._write(tmp_path / "bad.json", _stats_doc(tflops=1.0))
        report_out = tmp_path / "verdict.json"
        rc = main(["compare", base, good, bad, "--fail-on-regress",
                   "--report-out", str(report_out)])
        assert rc == 1
        doc = json.loads(report_out.read_text())
        assert doc["schema"] == "repro.obs.regress/1+multi"
        assert [r["verdict"] for r in doc["reports"]] == ["ok", "regressed"]


class TestSweepSummaryStats:
    def test_summary_stats_feed_the_sentinel(self):
        from repro.sweep.engine import SweepResult, SweepRun
        from repro.sweep.grid import RunSpec

        spec = RunSpec(n=1024, nb=256)
        run = SweepRun(spec=spec, key=spec.cache_key(), cached=False,
                       result={"makespan_seconds": 1.0, "tflops": 5.0,
                               "h2d_bytes": 10, "d2h_bytes": 4, "nic_bytes": 0,
                               "n_conversions": 2, "n_tasks": 3})
        result = SweepResult(name="t", runs=[run])
        stats = result.summary_stats()
        assert stats["makespan_seconds"] == 1.0
        assert stats["total_h2d_bytes"] == 10
        assert stats["n_runs"] == 1 and stats["n_failed"] == 0
        # two identical campaigns diff clean through the sentinel
        assert compare_docs(stats, stats).verdict == "ok"
