"""Tests for profile likelihood, model calibration, and detrending."""

import math

import numpy as np
import pytest

from repro.core.config import MPConfig
from repro.geostats import (
    Dataset,
    SyntheticField,
    detrend,
    fit_mle,
    fit_mle_profile,
    polynomial_design,
    profile_log_likelihood,
)
from repro.geostats.likelihood import log_likelihood
from repro.perfmodel import V100, calibrate_gpu, fit_gemm_curve, verify_table2
from repro.perfmodel.kernels import gemm_time
from repro.precision import Precision


@pytest.fixture(scope="module")
def dataset():
    return SyntheticField.matern_2d(n=144, range_=0.1, smoothness=0.5, seed=9).sample()


class TestProfileLikelihood:
    def test_matches_full_likelihood_at_profiled_sigma(self, dataset):
        """ℓ_p(φ) = ℓ((σ̂², φ)) — the defining identity of the profile."""
        cfg = MPConfig(accuracy=1e-15, formats=(Precision.FP64,), tile_size=18)
        phi = (0.1, 0.5)
        prof = profile_log_likelihood(dataset, phi, cfg)
        full = log_likelihood(dataset, (prof.sigma2_hat, *phi), cfg)
        assert prof.value == pytest.approx(full.value, rel=1e-10)

    def test_profiled_sigma_is_maximiser(self, dataset):
        cfg = MPConfig(accuracy=1e-15, formats=(Precision.FP64,), tile_size=18)
        phi = (0.1, 0.5)
        prof = profile_log_likelihood(dataset, phi, cfg)
        for factor in (0.8, 1.2):
            other = log_likelihood(dataset, (prof.sigma2_hat * factor, *phi), cfg)
            assert other.value < prof.value

    def test_fit_agrees_with_joint_fit(self, dataset):
        joint = fit_mle(dataset, exact=True, tile_size=18, max_evals=250, xtol=1e-7)
        prof = fit_mle_profile(dataset, exact=True, tile_size=18, max_evals=250,
                               xtol=1e-7)
        assert prof.loglik == pytest.approx(joint.loglik, abs=0.5)
        assert np.allclose(prof.theta_hat[1:], joint.theta_hat[1:], atol=0.05)

    def test_fewer_dimensions_fewer_evals(self, dataset):
        joint = fit_mle(dataset, exact=True, tile_size=18, max_evals=500,
                        xtol=1e-8, restarts=0)
        prof = fit_mle_profile(dataset, exact=True, tile_size=18, max_evals=500,
                               xtol=1e-8)
        assert prof.n_evals < joint.n_evals

    def test_mixed_precision_profile(self, dataset):
        res = fit_mle_profile(dataset, accuracy=1e-9, tile_size=18, max_evals=200,
                              xtol=1e-6)
        assert math.isfinite(res.loglik)
        assert res.theta_hat[0] > 0

    def test_nugget_rejected(self, dataset):
        noisy = Dataset(dataset.locations, dataset.z, dataset.model,
                        dataset.theta_true, nugget=0.1)
        with pytest.raises(ValueError, match="nugget-free"):
            fit_mle_profile(noisy)

    def test_infeasible_phi(self, dataset):
        cfg = MPConfig(accuracy=1e-15, formats=(Precision.FP64,), tile_size=18)
        prof = profile_log_likelihood(dataset, (-1.0, 0.5), cfg)
        assert prof.value == -math.inf


class TestCalibration:
    def test_shipped_model_passes_table2(self):
        report = verify_table2()
        assert report.ok, f"worst cell {report.worst_cell}: {report.max_rel_error:.3f}"
        assert report.mean_rel_error < 0.08

    def test_fit_recovers_known_curve(self):
        sizes = [256, 512, 1024, 2048, 4096]
        f_true, nh_true = 0.9, 512
        peak = 100.0
        rates = [peak * f_true * (n / nh_true) ** 2 / (1 + (n / nh_true) ** 2)
                 for n in sizes]
        f, nh = fit_gemm_curve(sizes, rates, peak)
        assert f == pytest.approx(f_true, rel=0.05)
        assert abs(nh - nh_true) <= 32

    def test_calibrate_gpu_changes_predictions(self):
        sizes = [1024, 2048, 4096]
        # pretend the real GPU is 30 % slower than the shipped model
        measured = [
            0.7 * 2.0 * n**3 / gemm_time(V100, n, Precision.FP64) / 1e12 for n in sizes
        ]
        new_gpu = calibrate_gpu(V100, Precision.FP64, sizes, measured)
        t_old = gemm_time(V100, 2048, Precision.FP64)
        t_new = gemm_time(new_gpu, 2048, Precision.FP64)
        assert t_new == pytest.approx(t_old / 0.7, rel=0.1)
        # other precisions untouched
        assert new_gpu.sustained_fraction[Precision.FP16] == V100.sustained_fraction[
            Precision.FP16
        ]

    def test_fit_validates_input(self):
        with pytest.raises(ValueError):
            fit_gemm_curve([100], [1.0], 10.0)
        with pytest.raises(ValueError):
            fit_gemm_curve([100, 200], [1.0, -1.0], 10.0)


class TestTrends:
    def test_design_shapes(self):
        locs = np.random.default_rng(0).random((20, 2))
        assert polynomial_design(locs, 0).shape == (20, 1)
        assert polynomial_design(locs, 1).shape == (20, 3)
        assert polynomial_design(locs, 2).shape == (20, 6)

    def test_degree_validation(self):
        locs = np.zeros((5, 2))
        with pytest.raises(ValueError):
            polynomial_design(locs, 3)

    def test_detrend_removes_linear_trend(self, dataset):
        trend = 3.0 + 2.0 * dataset.locations[:, 0] - 1.5 * dataset.locations[:, 1]
        biased = Dataset(dataset.locations, dataset.z + trend, dataset.model,
                         dataset.theta_true)
        residual, model = detrend(biased, degree=1)
        # recovered trend ≈ injected trend (up to the GP's own smooth part)
        assert np.allclose(model.predict(dataset.locations), trend, atol=1.0)
        assert abs(np.mean(residual.z)) < 1e-10  # OLS residuals are centred

    def test_detrended_fit_close_to_unbiased_fit(self, dataset):
        trend = 5.0 + 4.0 * dataset.locations[:, 0]
        biased = Dataset(dataset.locations, dataset.z + trend, dataset.model,
                         dataset.theta_true)
        residual, _ = detrend(biased, degree=1)
        fit_clean = fit_mle(dataset, exact=True, tile_size=18, max_evals=150,
                            xtol=1e-6, restarts=0)
        fit_detr = fit_mle(residual, exact=True, tile_size=18, max_evals=150,
                           xtol=1e-6, restarts=0)
        assert np.allclose(fit_clean.theta_hat, fit_detr.theta_hat, rtol=0.3,
                           atol=0.05)

    def test_trend_prediction_at_new_locations(self):
        locs = np.random.default_rng(1).random((30, 2))
        z = 1.0 + 2.0 * locs[:, 0] + 3.0 * locs[:, 1]
        from repro.geostats.covariance import Matern

        ds = Dataset(locs, z, Matern(dim=2))
        _res, trend = detrend(ds, degree=1)
        new = np.array([[0.5, 0.5]])
        assert trend.predict(new)[0] == pytest.approx(1.0 + 1.0 + 1.5, abs=1e-8)
