"""Unit and property tests for the tile-centric precision selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.precision_map import (
    KernelPrecisionMap,
    band_precision_map,
    build_precision_map,
    two_precision_map,
    uniform_map,
)
from repro.precision import ADAPTIVE_FORMATS, Precision, rule_epsilon
from repro.tiles.norms import global_norm_from_tile_norms, tile_norms


def _norms(nt: int, rng: np.random.Generator, decay: float = 0.5) -> np.ndarray:
    base = np.array(
        [[np.exp(-decay * abs(i - j)) for j in range(nt)] for i in range(nt)]
    )
    return base * (1.0 + 0.01 * rng.random((nt, nt)))


class TestRule:
    def test_diagonal_always_fp64(self, rng):
        kmap = build_precision_map(_norms(8, rng), 1e-2)
        for k in range(8):
            assert kmap.kernel(k, k) == Precision.FP64

    def test_rule_threshold_exact(self):
        """A tile sits at precision p iff rel ≤ u_req/u_low(p) (narrowest wins)."""
        nt = 6
        norms = _norms(nt, np.random.default_rng(0), decay=1.0)
        u_req = 1e-4
        kmap = build_precision_map(norms, u_req)
        gnorm = global_norm_from_tile_norms(norms)
        for i in range(nt):
            for j in range(i):
                rel = norms[i, j] * nt / gnorm
                selected = kmap.kernel(i, j)
                # the selected format admits the tile
                assert rel <= u_req / rule_epsilon(selected) or selected == Precision.FP64
                # and no narrower adaptive format admits it
                for prec in ADAPTIVE_FORMATS:
                    if prec < selected:
                        assert rel > u_req / rule_epsilon(prec)

    def test_tighter_accuracy_never_lowers_precision(self, rng):
        norms = _norms(10, rng)
        loose = build_precision_map(norms, 1e-2)
        tight = build_precision_map(norms, 1e-8)
        assert np.all(tight.codes >= loose.codes)

    def test_extremes(self, rng):
        norms = _norms(6, rng)
        # absurdly loose accuracy: everything off-diagonal goes FP16
        loose = build_precision_map(norms, 0.99)
        off = [loose.kernel(i, j) for i in range(6) for j in range(i)]
        assert all(p == Precision.FP16 for p in off)
        # extremely tight: everything FP64
        tight = build_precision_map(norms, 1e-15)
        assert np.all(tight.codes == int(Precision.FP64))

    def test_restricted_format_set(self, rng):
        norms = _norms(8, rng)
        kmap = build_precision_map(norms, 1e-2, formats=(Precision.FP64, Precision.FP32))
        used = set(np.unique(kmap.codes))
        assert used <= {int(Precision.FP64), int(Precision.FP32)}

    def test_zero_matrix(self):
        kmap = build_precision_map(np.zeros((4, 4)), 1e-4)
        assert np.all(kmap.codes == int(Precision.FP64))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            build_precision_map(np.ones((3, 4)), 1e-4)

    def test_matches_real_covariance(self, matern_cov_160):
        norms = tile_norms(matern_cov_160)
        kmap = build_precision_map(norms, 1e-4)
        fr = kmap.tile_fractions()
        assert fr[Precision.FP64] >= 8 / 36  # at least the diagonal


class TestMapHelpers:
    def test_two_precision_map(self):
        kmap = two_precision_map(5, Precision.FP16)
        assert kmap.kernel(0, 0) == Precision.FP64
        assert kmap.kernel(3, 1) == Precision.FP16

    def test_uniform_fp64(self):
        kmap = uniform_map(4, Precision.FP64)
        assert np.all(kmap.codes == int(Precision.FP64))

    def test_band_map(self):
        kmap = band_precision_map(6, [(0, Precision.FP64), (2, Precision.FP32),
                                      (6, Precision.FP16)])
        assert kmap.kernel(1, 1) == Precision.FP64
        assert kmap.kernel(2, 1) == Precision.FP32
        assert kmap.kernel(5, 0) == Precision.FP16

    def test_band_map_empty_raises(self):
        with pytest.raises(ValueError):
            band_precision_map(4, [])

    def test_fractions_sum_to_one(self, rng):
        kmap = build_precision_map(_norms(9, rng), 1e-4)
        assert sum(kmap.tile_fractions().values()) == pytest.approx(1.0)
        assert sum(kmap.flop_weighted_fractions().values()) == pytest.approx(1.0)

    def test_flop_weighting_favors_offdiagonal(self):
        kmap = two_precision_map(20, Precision.FP16)
        tile_fr = kmap.tile_fractions()
        flop_fr = kmap.flop_weighted_fractions()
        assert flop_fr[Precision.FP16] > tile_fr[Precision.FP16]

    def test_render_contains_legend(self, rng):
        out = build_precision_map(_norms(4, rng), 1e-4).render()
        assert "FP64" in out and "\n" in out

    def test_codes_shape_validated(self):
        with pytest.raises(ValueError):
            KernelPrecisionMap(nt=4, codes=np.zeros((3, 3), dtype=np.int8))


@given(st.integers(2, 12), st.floats(1e-12, 1e-1), st.integers(0, 10**6))
@settings(max_examples=50, deadline=None)
def test_property_selection_total_and_valid(nt, u_req, seed):
    rng = np.random.default_rng(seed)
    norms = np.abs(rng.lognormal(0.0, 2.0, size=(nt, nt)))
    norms = (norms + norms.T) / 2
    kmap = build_precision_map(norms, u_req)
    for i in range(nt):
        for j in range(nt):
            prec = kmap.kernel(i, j)
            assert prec in ADAPTIVE_FORMATS
            if i == j:
                assert prec == Precision.FP64
