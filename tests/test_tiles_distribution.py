"""Unit and property tests for the 2D block-cyclic distribution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tiles.distribution import ProcessGrid, lower_triangle_tiles, squarest_grid


class TestSquarestGrid:
    @pytest.mark.parametrize(
        "p,expected",
        [(1, (1, 1)), (2, (1, 2)), (4, (2, 2)), (6, (2, 3)), (12, (3, 4)),
         (384, (16, 24)), (7, (1, 7)), (36, (6, 6))],
    )
    def test_known_factorizations(self, p, expected):
        assert squarest_grid(p) == expected

    @given(st.integers(1, 2000))
    @settings(max_examples=80)
    def test_invariants(self, p):
        a, b = squarest_grid(p)
        assert a * b == p
        assert a <= b  # paper: P ≤ Q

    def test_invalid(self):
        with pytest.raises(ValueError):
            squarest_grid(0)


class TestProcessGrid:
    def test_owner_rank_layout(self):
        g = ProcessGrid(2, 3)
        assert g.size == 6
        assert g.owner(0, 0) == 0
        assert g.owner(0, 1) == 1
        assert g.owner(1, 0) == 3
        assert g.owner(2, 3) == 0  # cyclic wrap

    def test_coords_roundtrip(self):
        g = ProcessGrid(3, 4)
        for rank in range(g.size):
            r, c = g.coords(rank)
            assert r * g.q + c == rank

    def test_coords_out_of_range(self):
        with pytest.raises(ValueError):
            ProcessGrid(2, 2).coords(4)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            ProcessGrid(0, 3)

    @given(st.integers(1, 6), st.integers(1, 6), st.integers(0, 40), st.integers(0, 40))
    def test_owner_in_range(self, p, q, i, j):
        g = ProcessGrid(p, q)
        assert 0 <= g.owner(i, j) < g.size

    @given(st.integers(1, 5), st.integers(1, 5), st.integers(2, 20))
    @settings(max_examples=50)
    def test_tiles_partitioned(self, p, q, nt):
        """Every lower tile is owned by exactly one rank."""
        g = ProcessGrid(p, q)
        seen = set()
        for rank in range(g.size):
            for tile in g.tiles_owned(rank, nt):
                assert tile not in seen
                seen.add(tile)
        assert seen == set(lower_triangle_tiles(nt))

    @given(st.integers(1, 5), st.integers(1, 5), st.integers(2, 24))
    @settings(max_examples=50)
    def test_counts_match_tiles_owned(self, p, q, nt):
        g = ProcessGrid(p, q)
        counts = g.tile_counts(nt)
        assert counts == [len(g.tiles_owned(r, nt)) for r in range(g.size)]
        assert sum(counts) == nt * (nt + 1) // 2

    def test_load_balance_improves_with_nt(self):
        g = ProcessGrid(2, 3)
        assert g.load_imbalance(60) < g.load_imbalance(6)

    def test_full_matrix_mode(self):
        g = ProcessGrid(2, 2)
        counts = g.tile_counts(4, lower_only=False)
        assert counts == [4, 4, 4, 4]

    def test_squarest_constructor(self):
        g = ProcessGrid.squarest(384)
        assert (g.p, g.q) == (16, 24)
