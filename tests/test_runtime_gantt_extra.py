"""Additional edge-case coverage for trace export."""

import json

from repro.precision import Precision
from repro.runtime.gantt import ascii_gantt, engine_utilisation, to_chrome_trace
from repro.runtime.tracing import TraceEvent


def _ev(rank=0, engine="compute", kind="GEMM", t0=0.0, t1=1.0, prec=Precision.FP16):
    return TraceEvent(rank, engine, kind, t0, t1, prec, 0, 100.0)


class TestGanttEdges:
    def test_zero_length_trace(self):
        assert "zero-length" in ascii_gantt([_ev(t0=0.0, t1=0.0)], makespan=0.0)

    def test_unknown_kind_glyph(self):
        out = ascii_gantt([_ev(kind="MYSTERY")], width=10)
        assert "#" in out

    def test_longest_event_wins_cell(self):
        evs = [_ev(kind="GEMM", t0=0.0, t1=0.9), _ev(kind="TRSM", t0=0.9, t1=1.0)]
        out = ascii_gantt(evs, makespan=1.0, width=10)
        row = [l for l in out.splitlines() if "compute" in l][0]
        assert row.count("G") > row.count("T")

    def test_rows_sorted_by_rank_engine(self):
        evs = [_ev(rank=1, engine="h2d"), _ev(rank=0, engine="compute")]
        out = ascii_gantt(evs, makespan=1.0, width=10)
        lines = [l for l in out.splitlines() if l.startswith("r")]
        assert lines[0].startswith("r0") and lines[1].startswith("r1")

    def test_chrome_trace_empty(self):
        payload = json.loads(to_chrome_trace([]))
        assert payload["traceEvents"] == []

    def test_chrome_trace_no_precision(self):
        ev = TraceEvent(0, "nic", "SEND", 0.0, 1.0, None, 512)
        payload = json.loads(to_chrome_trace([ev]))
        assert payload["traceEvents"][0]["args"]["precision"] == ""
        assert payload["traceEvents"][0]["args"]["bytes"] == 512

    def test_utilisation_empty_makespan(self):
        assert engine_utilisation([_ev()], 0.0) == {}

    def test_utilisation_clamped(self):
        evs = [_ev(t0=0.0, t1=2.0)]  # event longer than makespan
        util = engine_utilisation(evs, 1.0)
        assert util[(0, "compute")] == 1.0
