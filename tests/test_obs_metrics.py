"""Metrics registry semantics: labels, histogram quantiles, timers."""

import math
import threading

import pytest

from repro.obs import MetricsRegistry


@pytest.fixture
def reg() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_labeled_series_are_independent(self, reg):
        c = reg.counter("bytes", "moved")
        c.inc(10, link="h2d")
        c.inc(5, link="nic")
        c.inc(2.5, link="h2d")
        assert c.value(link="h2d") == 12.5
        assert c.value(link="nic") == 5.0
        assert c.value(link="d2h") == 0.0
        assert c.total() == 17.5

    def test_label_order_is_canonical(self, reg):
        c = reg.counter("c")
        c.inc(1, a="x", b="y")
        c.inc(1, b="y", a="x")
        assert c.value(a="x", b="y") == 2.0

    def test_counters_only_go_up(self, reg):
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_create_or_fetch_same_instance(self, reg):
        assert reg.counter("c") is reg.counter("c")

    def test_type_conflict_raises(self, reg):
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_thread_safety(self, reg):
        c = reg.counter("n")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 8000


class TestGauge:
    def test_last_write_wins(self, reg):
        g = reg.gauge("occupancy")
        g.set(0.5, rank="0")
        g.set(0.75, rank="0")
        assert g.value(rank="0") == 0.75

    def test_add_is_signed(self, reg):
        g = reg.gauge("pool")
        g.add(100)
        g.add(-40)
        assert g.value() == 60


class TestHistogram:
    def test_quantiles(self, reg):
        h = reg.histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.count() == 100
        assert h.sum() == pytest.approx(5050.0)
        assert h.mean() == pytest.approx(50.5)
        assert h.quantile(0.5) == pytest.approx(50.0)
        assert h.quantile(0.9) == pytest.approx(90.0)
        assert h.quantile(1.0) == pytest.approx(100.0)
        assert h.quantile(0.0) == pytest.approx(1.0)

    def test_quantile_validation(self, reg):
        with pytest.raises(ValueError):
            reg.histogram("h").quantile(1.5)

    def test_empty_quantile_is_nan(self, reg):
        assert math.isnan(reg.histogram("h").quantile(0.5))

    def test_labeled_series(self, reg):
        h = reg.histogram("t")
        h.observe(1.0, kind="GEMM")
        h.observe(3.0, kind="POTRF")
        assert h.count(kind="GEMM") == 1
        assert h.count(kind="POTRF") == 1
        assert h.count() == 0

    def test_reservoir_stays_bounded_but_exact_aggregates(self):
        reg = MetricsRegistry()
        h = reg.histogram("big", max_samples=64)
        n = 10_000
        for v in range(n):
            h.observe(float(v))
        assert h.count() == n
        assert h.sum() == pytest.approx(sum(range(n)))
        series = h.to_dict()["series"][0]["value"]
        assert series["min"] == 0.0 and series["max"] == float(n - 1)
        # decimated reservoir still tracks the distribution roughly
        assert abs(h.quantile(0.5) - n / 2) < n * 0.1


class TestTimer:
    def test_context_manager_records(self, reg):
        t = reg.timer("step")
        with t.time(phase="plan") as running:
            pass
        assert running.elapsed >= 0.0
        assert t.count(phase="plan") == 1
        assert t.sum(phase="plan") == pytest.approx(running.elapsed)


class TestRegistry:
    def test_to_dict_shape(self, reg):
        reg.counter("c", "help text").inc(2, x="1")
        reg.gauge("g").set(7)
        snap = reg.to_dict()
        assert snap["c"]["type"] == "counter"
        assert snap["c"]["help"] == "help text"
        assert snap["c"]["series"] == [{"labels": {"x": "1"}, "value": 2.0}]
        assert snap["g"]["series"][0]["value"] == 7.0

    def test_reset(self, reg):
        reg.counter("c").inc()
        reg.reset()
        assert "c" not in reg
        assert reg.to_dict() == {}

    def test_names_sorted(self, reg):
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ["a", "b"]
