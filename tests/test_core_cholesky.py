"""Unit and property tests for the adaptive mixed-precision Cholesky."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cholesky import logdet_from_factor, mp_cholesky, solve_with_factor
from repro.core.config import ConversionStrategy
from repro.core.precision_map import build_precision_map, two_precision_map, uniform_map
from repro.precision import Precision
from repro.tiles.kernels import NotPositiveDefiniteError
from repro.tiles.norms import tile_norms
from repro.tiles.tilematrix import TiledSymmetricMatrix
from tests.conftest import random_spd


class TestFP64Reference:
    def test_matches_numpy(self, tiled_96, spd_96):
        res = mp_cholesky(tiled_96)
        l = res.factor.lower_dense()
        assert np.allclose(l, np.linalg.cholesky(spd_96), atol=1e-10)

    def test_reconstruction(self, tiled_96, spd_96):
        l = mp_cholesky(tiled_96).factor.lower_dense()
        rel = np.linalg.norm(l @ l.T - spd_96) / np.linalg.norm(spd_96)
        assert rel < 1e-14

    def test_ragged_tiles(self, rng):
        spd = random_spd(52, rng)
        mat = TiledSymmetricMatrix.from_dense(spd, 16)
        l = mp_cholesky(mat).factor.lower_dense()
        assert np.allclose(l @ l.T, spd)

    def test_single_tile(self, rng):
        spd = random_spd(16, rng)
        mat = TiledSymmetricMatrix.from_dense(spd, 16)
        l = mp_cholesky(mat).factor.lower_dense()
        assert np.allclose(l, np.linalg.cholesky(spd))

    def test_input_not_modified_by_default(self, tiled_96):
        before = tiled_96.to_dense()
        mp_cholesky(tiled_96)
        assert np.array_equal(tiled_96.to_dense(), before)

    def test_overwrite_mode(self, tiled_96, spd_96):
        res = mp_cholesky(tiled_96, overwrite=True)
        assert res.factor is tiled_96

    def test_raises_on_indefinite(self, rng):
        a = rng.standard_normal((32, 32))
        sym = (a + a.T) / 2  # indefinite
        mat = TiledSymmetricMatrix.from_dense(sym, 16)
        with pytest.raises(NotPositiveDefiniteError):
            mp_cholesky(mat)


class TestMixedPrecision:
    def test_error_scales_with_accuracy(self, matern_cov_160):
        dense = matern_cov_160.to_dense()
        dense += 0.01 * np.eye(160)
        mat = TiledSymmetricMatrix.from_dense(dense, 20)
        norms = tile_norms(mat)
        errors = {}
        for acc in (1e-2, 1e-6, 1e-12):
            kmap = build_precision_map(norms, acc)
            l = mp_cholesky(mat, kmap).factor.lower_dense()
            errors[acc] = np.linalg.norm(l @ l.T - dense) / np.linalg.norm(dense)
        assert errors[1e-12] < errors[1e-6] < errors[1e-2]
        assert errors[1e-2] < 1e-1

    def test_error_within_budget(self, matern_cov_160):
        """The factorization residual respects the u_req budget scale."""
        dense = matern_cov_160.to_dense() + 0.01 * np.eye(160)
        mat = TiledSymmetricMatrix.from_dense(dense, 20)
        acc = 1e-4
        kmap = build_precision_map(tile_norms(mat), acc)
        l = mp_cholesky(mat, kmap).factor.lower_dense()
        rel = np.linalg.norm(l @ l.T - dense) / np.linalg.norm(dense)
        assert rel < acc * mat.nt * 10  # rule bound with slack for growth

    @pytest.mark.parametrize(
        "strategy", [ConversionStrategy.AUTO, ConversionStrategy.STC, ConversionStrategy.TTC]
    )
    def test_strategies_numerically_close(self, matern_cov_160, strategy):
        """STC never loses more accuracy than TTC beyond re-quantisation."""
        dense = matern_cov_160.to_dense() + 0.01 * np.eye(160)
        mat = TiledSymmetricMatrix.from_dense(dense, 20)
        kmap = build_precision_map(tile_norms(mat), 1e-4)
        ref = mp_cholesky(mat, kmap, strategy=ConversionStrategy.TTC).factor.lower_dense()
        out = mp_cholesky(mat, kmap, strategy=strategy).factor.lower_dense()
        rel = np.linalg.norm(out - ref) / np.linalg.norm(ref)
        assert rel < 1e-3

    def test_kernel_counts(self, tiled_96):
        res = mp_cholesky(tiled_96, two_precision_map(6, Precision.FP16))
        counts = res.kernel_counts
        assert counts[("POTRF", Precision.FP64)] == 6
        assert counts[("SYRK", Precision.FP64)] == 15
        assert counts[("TRSM", Precision.FP32)] == 15  # FP16 tiles → FP32 TRSM
        assert counts[("GEMM", Precision.FP16)] == 20

    def test_map_size_mismatch(self, tiled_96):
        with pytest.raises(ValueError, match="NT"):
            mp_cholesky(tiled_96, uniform_map(5, Precision.FP64))


class TestLogdetAndSolve:
    def test_logdet_matches_slogdet(self, tiled_96, spd_96):
        res = mp_cholesky(tiled_96)
        _sign, ref = np.linalg.slogdet(spd_96)
        assert logdet_from_factor(res.factor) == pytest.approx(ref)

    def test_result_logdet_method(self, tiled_96):
        res = mp_cholesky(tiled_96)
        assert res.logdet() == logdet_from_factor(res.factor)

    def test_solve(self, tiled_96, spd_96, rng):
        res = mp_cholesky(tiled_96)
        b = rng.standard_normal(96)
        x = solve_with_factor(res.factor, b)
        assert np.allclose(spd_96 @ x, b)

    def test_solve_matrix_rhs(self, tiled_96, spd_96, rng):
        res = mp_cholesky(tiled_96)
        b = rng.standard_normal((96, 3))
        x = solve_with_factor(res.factor, b)
        assert np.allclose(spd_96 @ x, b)

    def test_logdet_neg_inf_on_bad_diag(self, tiled_96):
        res = mp_cholesky(tiled_96)
        tile = res.factor.get(0, 0)
        tile[0, 0] = -1.0
        res.factor.set(0, 0, tile)
        assert logdet_from_factor(res.factor) == -math.inf


@given(st.integers(2, 5), st.integers(0, 10**6),
       st.sampled_from([1e-1, 1e-4, 1e-8]))
@settings(max_examples=25, deadline=None)
def test_property_mp_factor_residual_bounded(nt, seed, accuracy):
    """For diagonally dominant SPD input, MP residual stays proportional
    to the accuracy budget and the factor keeps a positive diagonal."""
    rng = np.random.default_rng(seed)
    nb = 8
    n = nt * nb
    a = rng.standard_normal((n, n))
    spd = a @ a.T + 2 * n * np.eye(n)
    mat = TiledSymmetricMatrix.from_dense(spd, nb)
    kmap = build_precision_map(tile_norms(mat), accuracy)
    res = mp_cholesky(mat, kmap)
    l = res.factor.lower_dense()
    rel = np.linalg.norm(l @ l.T - spd) / np.linalg.norm(spd)
    assert rel < max(accuracy * nt * 20, 1e-13)
    assert np.all(np.diag(l) > 0)
