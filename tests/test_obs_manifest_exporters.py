"""Run manifests and the Perfetto/CSV/JSON exporters."""

import csv
import io
import json

import pytest

from repro import obs
from repro.core import two_precision_map
from repro.core.solver import simulate_cholesky
from repro.perfmodel.gpus import V100
from repro.precision import Precision
from repro.runtime import Platform
from repro.runtime.gantt import to_chrome_trace
from repro.runtime.tracing import TraceEvent


@pytest.fixture(scope="module")
def sim_report():
    kmap = two_precision_map(6, Precision.FP16)
    platform = Platform.single_gpu(V100)
    return simulate_cholesky(6 * 512, 512, kmap, platform, record_events=True)


class TestManifest:
    def test_deterministic_under_fixed_inputs(self):
        a = obs.build_manifest(run_id="r", command="simulate",
                               config={"n": 1024, "seed": 7}, seed=7)
        b = obs.build_manifest(run_id="r", command="simulate",
                               config={"n": 1024, "seed": 7}, seed=7)
        assert a == b
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_contents(self):
        m = obs.build_manifest(command="mle", seed=3, config={"model": "2d-matern"})
        assert m["command"] == "mle"
        assert m["seed"] == 3
        assert m["config"] == {"model": "2d-matern"}
        assert m["versions"]["python"]
        assert m["versions"]["numpy"]
        assert m["versions"]["repro"]
        assert m["platform"]["system"]
        # this repo is a git checkout, so the revision must resolve
        assert isinstance(m["git_revision"], str) and len(m["git_revision"]) == 40

    def test_config_normalisation(self):
        from repro.core.config import MPConfig

        m = obs.build_manifest(config=MPConfig())
        cfg = m["config"]
        assert cfg["accuracy"] == MPConfig().accuracy
        # enums become their names
        assert all(isinstance(f, str) for f in cfg["formats"])

    def test_write_manifest_round_trip(self, tmp_path):
        m = obs.build_manifest(run_id="x", seed=0)
        path = obs.write_manifest(tmp_path / "manifest.json", m)
        assert json.loads(path.read_text()) == m


class TestPerfettoExport:
    def test_counter_tracks_present_and_valid(self, sim_report, tmp_path):
        path = obs.write_perfetto_trace(sim_report.trace.events, tmp_path / "t.json")
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        names = {e["name"] for e in counters}
        assert "gpu pool bytes" in names
        assert "h2d inflight bytes" in names
        assert "conversions (cum)" in names
        assert all("value" in e["args"] for e in counters)
        # counter samples are time-sorted
        ts = [e["ts"] for e in counters]
        assert ts == sorted(ts)

    def test_cumulative_conversions_track_convert_slices(self, sim_report):
        payload = json.loads(to_chrome_trace(sim_report.trace.events, counters=True))
        conv = [e for e in payload["traceEvents"]
                if e.get("ph") == "C" and e["name"] == "conversions (cum)"]
        n_convert_events = sum(1 for e in sim_report.trace.events if e.kind == "CONVERT")
        assert conv[-1]["args"]["value"] == n_convert_events
        # one CONVERT slice per conversion pass (site-tagged), so the
        # track ends exactly at the stats counter
        assert 0 < n_convert_events == sim_report.stats.n_conversions
        values = [e["args"]["value"] for e in conv]
        assert values == sorted(values)  # cumulative ⇒ non-decreasing

    def test_inflight_bytes_return_to_zero(self, sim_report):
        payload = json.loads(to_chrome_trace(sim_report.trace.events, counters=True))
        h2d = [e for e in payload["traceEvents"]
               if e.get("ph") == "C" and e["name"] == "h2d inflight bytes"]
        assert h2d[-1]["args"]["value"] == 0

    def test_nic_counter_accumulates_per_rank(self):
        events = [
            TraceEvent(0, "nic", "SEND", 0.0, 0.1, None, 100),
            TraceEvent(0, "nic", "SEND", 0.1, 0.3, None, 50),
            TraceEvent(1, "nic", "SEND", 0.0, 0.2, None, 7),
        ]
        payload = json.loads(to_chrome_trace(events, counters=True))
        nic = [e for e in payload["traceEvents"]
               if e.get("ph") == "C" and e["name"] == "nic bytes (cum)"]
        final = {e["pid"]: e["args"]["value"] for e in nic}
        assert final == {0: 150, 1: 7}  # cumulative, last sample wins per rank

    def test_obs_events_become_instant_markers(self, sim_report):
        obs_events = [
            {"type": "fault", "ts": 0.5, "attrs": {"kind": "transient", "rank": 1}},
            {"type": "retry", "ts": 0.6, "attrs": {"op": "sweep.point"}},
            {"type": "sweep.run", "ts": 0.7, "attrs": {}},  # not a fault marker
        ]
        payload = json.loads(to_chrome_trace(sim_report.trace.events,
                                             obs_events=obs_events))
        instants = [e for e in payload["traceEvents"] if e.get("ph") == "i"]
        assert {e["name"] for e in instants} == {"fault", "retry"}
        fault = next(e for e in instants if e["name"] == "fault")
        assert fault["pid"] == 1 and fault["s"] == "p"  # rank-scoped
        retry = next(e for e in instants if e["name"] == "retry")
        assert retry["s"] == "g"  # no rank → global scope
        assert fault["ts"] == pytest.approx(0.5e6)

    def test_metadata_names_processes_and_threads(self, sim_report):
        payload = json.loads(to_chrome_trace(sim_report.trace.events))
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        proc = [e for e in meta if e["name"] == "process_name"]
        thread = [e for e in meta if e["name"] == "thread_name"]
        assert proc and proc[0]["args"]["name"].startswith("rank ")
        assert {e["args"]["name"] for e in thread} >= {"compute", "h2d"}


class TestCsvAndSummary:
    def test_csv_round_trip(self, tmp_path):
        events = [
            TraceEvent(0, "compute", "GEMM", 0.0, 1.0, Precision.FP16, 0, 64.0),
            TraceEvent(1, "nic", "SEND", 0.5, 0.75, None, 512, 0.0),
        ]
        text = obs.trace_to_csv(events)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[0]["kind"] == "GEMM" and rows[0]["precision"] == "FP16"
        assert rows[1]["precision"] == "" and rows[1]["bytes"] == "512"
        path = obs.write_trace_csv(events, tmp_path / "t.csv")
        assert path.read_text() == text

    def test_run_summary_sections(self, sim_report, tmp_path):
        manifest = obs.build_manifest(run_id="s", command="simulate")
        path = obs.write_run_summary(
            tmp_path / "metrics.json",
            stats=sim_report.stats,
            trace=sim_report.trace,
            manifest=manifest,
        )
        doc = json.loads(path.read_text())
        assert doc["manifest"]["run_id"] == "s"
        assert doc["stats"]["n_tasks"] == sim_report.stats.n_tasks
        assert doc["trace"]["n_events"] == len(sim_report.trace.events)
        assert "metrics" in doc

    def test_stats_to_dict_is_json_ready(self, sim_report):
        d = sim_report.stats.to_dict()
        json.dumps(d)
        assert d["n_tasks"] == sim_report.stats.n_tasks
        assert d["h2d_bytes"] == sim_report.stats.h2d_bytes
        assert all(isinstance(k, str) for k in d["flops_by_precision"])

    def test_trace_summary(self, sim_report):
        s = sim_report.trace.summary()
        json.dumps(s)
        assert s["n_events"] == len(sim_report.trace.events)
        assert s["makespan_seconds"] == pytest.approx(sim_report.makespan)
        assert "compute" in s["busy_seconds_by_engine"]
        assert s["events_by_kind"]["POTRF"] == 6
