"""Unit tests for the error-measurement helpers."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.precision.errors import (
    combine_frobenius,
    frobenius,
    max_abs_error,
    relative_frobenius_error,
)

finite = st.floats(-1e6, 1e6, allow_nan=False)


def test_frobenius_matches_numpy(rng):
    a = rng.standard_normal((7, 9))
    assert frobenius(a) == float(np.linalg.norm(a))


def test_relative_error_zero_for_equal(rng):
    a = rng.standard_normal((5, 5))
    assert relative_frobenius_error(a, a) == 0.0


def test_relative_error_zero_exact_zero():
    z = np.zeros((3, 3))
    assert relative_frobenius_error(z, z) == 0.0


def test_relative_error_inf_when_exact_zero():
    assert relative_frobenius_error(np.ones((2, 2)), np.zeros((2, 2))) == math.inf


def test_max_abs_error(rng):
    a = rng.standard_normal((4, 4))
    b = a.copy()
    b[2, 1] += 0.5
    assert max_abs_error(b, a) == 0.5


@given(hnp.arrays(np.float64, (4, 6), elements=finite))
@settings(max_examples=50)
def test_combine_frobenius_consistent(a):
    """Combining per-block norms reproduces the global norm."""
    blocks = [a[:2, :3], a[:2, 3:], a[2:, :3], a[2:, 3:]]
    combined = combine_frobenius([frobenius(b) for b in blocks])
    assert combined == float(np.linalg.norm(a)) or abs(
        combined - float(np.linalg.norm(a))
    ) <= 1e-9 * (1.0 + combined)


@given(hnp.arrays(np.float64, (3, 3), elements=finite),
       hnp.arrays(np.float64, (3, 3), elements=finite))
@settings(max_examples=50)
def test_relative_error_scale_invariant(a, b):
    err1 = relative_frobenius_error(a, b)
    err2 = relative_frobenius_error(2.0 * a, 2.0 * b)
    if math.isfinite(err1) and math.isfinite(err2):
        assert err2 == err1 or abs(err2 - err1) <= 1e-12 * (1.0 + err1)
