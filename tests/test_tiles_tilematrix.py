"""Unit tests for tiled symmetric matrix storage."""

import numpy as np
import pytest

from repro.precision import Precision
from repro.tiles.tilematrix import TiledSymmetricMatrix, tile_index_range


class TestTileIndexRange:
    def test_uniform(self):
        assert tile_index_range(100, 25, 0) == (0, 25)
        assert tile_index_range(100, 25, 3) == (75, 100)

    def test_ragged_last(self):
        assert tile_index_range(90, 25, 3) == (75, 90)

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            tile_index_range(100, 25, 4)


class TestRoundtrip:
    def test_dense_roundtrip(self, spd_96):
        mat = TiledSymmetricMatrix.from_dense(spd_96, 16)
        assert mat.nt == 6
        assert np.array_equal(mat.to_dense(), spd_96)

    def test_ragged_roundtrip(self, rng):
        a = rng.standard_normal((50, 50))
        spd = a @ a.T + 50 * np.eye(50)
        mat = TiledSymmetricMatrix.from_dense(spd, 16)
        assert mat.nt == 4
        assert mat.tile_shape(3, 3) == (2, 2)
        assert mat.tile_shape(3, 0) == (2, 16)
        assert np.array_equal(mat.to_dense(), spd)

    def test_mirrored_access(self, tiled_96):
        upper = tiled_96.get(0, 3)
        lower = tiled_96.get(3, 0)
        assert np.array_equal(upper, lower.T)

    def test_from_tile_function(self):
        mat = TiledSymmetricMatrix.from_tile_function(
            8, 4, lambda i, j: np.full((4, 4), 10 * i + j, dtype=float)
        )
        assert np.all(mat.get(1, 0) == 10.0)
        assert np.all(mat.get(0, 1) == 10.0)  # transposed mirror

    def test_lower_dense_is_triangular(self, tiled_96):
        low = tiled_96.lower_dense()
        assert np.array_equal(low, np.tril(low))


class TestStoragePrecision:
    def test_default_fp64(self, tiled_96):
        assert tiled_96.precision_of(2, 1) == Precision.FP64
        assert tiled_96.tiles[(2, 1)].dtype == np.float64

    def test_kernel_precision_casts_storage(self, spd_96):
        kmap = lambda i, j: Precision.FP64 if i == j else Precision.FP16
        mat = TiledSymmetricMatrix.from_dense(spd_96, 16, kernel_precision=kmap)
        assert mat.tiles[(0, 0)].dtype == np.float64
        assert mat.tiles[(1, 0)].dtype == np.float32  # FP16 kernels rest in FP32
        assert mat.precision_of(1, 0) == Precision.FP32

    def test_set_records_precision(self, tiled_96, rng):
        tile = rng.standard_normal(tiled_96.tile_shape(2, 0))
        tiled_96.set(2, 0, tile, precision=Precision.FP32)
        assert tiled_96.tiles[(2, 0)].dtype == np.float32
        # subsequent set without precision keeps the recorded one
        tiled_96.set(2, 0, tile)
        assert tiled_96.tiles[(2, 0)].dtype == np.float32

    def test_storage_bytes_shrink(self, spd_96):
        full = TiledSymmetricMatrix.from_dense(spd_96, 16)
        mixed = TiledSymmetricMatrix.from_dense(
            spd_96, 16, kernel_precision=lambda i, j: Precision.FP64 if i == j else Precision.FP32
        )
        assert mixed.storage_bytes() < full.storage_bytes()


class TestValidation:
    def test_set_upper_raises(self, tiled_96, rng):
        with pytest.raises(IndexError):
            tiled_96.set(0, 3, rng.standard_normal((16, 16)))

    def test_set_wrong_shape(self, tiled_96, rng):
        with pytest.raises(ValueError, match="shape"):
            tiled_96.set(2, 0, rng.standard_normal((8, 8)))

    def test_from_dense_requires_square(self, rng):
        with pytest.raises(ValueError, match="square"):
            TiledSymmetricMatrix.from_dense(rng.standard_normal((4, 6)), 2)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            TiledSymmetricMatrix(n=0, nb=4)


class TestCopy:
    def test_copy_independent(self, tiled_96):
        clone = tiled_96.copy()
        clone.tiles[(0, 0)][0, 0] += 1.0
        assert tiled_96.tiles[(0, 0)][0, 0] != clone.tiles[(0, 0)][0, 0]
        assert clone.storage_precision == tiled_96.storage_precision
