"""Unit tests for the energy and occupancy post-processing."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.perfmodel.energy import energy_report, power_trace
from repro.perfmodel.gpus import V100
from repro.perfmodel.occupancy import busy_fraction, mean_occupancy, occupancy_trace
from repro.precision import Precision


@dataclass(frozen=True)
class Ev:
    t_start: float
    t_end: float
    engine: str = "compute"
    precision: Precision = Precision.FP64
    flops: float = 0.0


class TestEnergy:
    def test_idle_only(self):
        rep = energy_report(V100, [], makespan=10.0)
        assert rep.total_joules == pytest.approx(V100.idle_power * 10.0)
        assert rep.gflops_per_watt == 0.0

    def test_compute_energy_additive(self):
        ev = Ev(0.0, 4.0, "compute", Precision.FP64, flops=1e12)
        rep = energy_report(V100, [ev], makespan=10.0)
        expected = V100.idle_power * 10.0 + (
            V100.compute_power(Precision.FP64) - V100.idle_power
        ) * 4.0
        assert rep.total_joules == pytest.approx(expected)
        assert rep.total_flops == 1e12

    def test_fp16_cheaper_than_fp64(self):
        e64 = energy_report(V100, [Ev(0, 5, "compute", Precision.FP64)], 5.0)
        e16 = energy_report(V100, [Ev(0, 5, "compute", Precision.FP16)], 5.0)
        assert e16.total_joules < e64.total_joules

    def test_copy_engine_adder(self):
        ev = Ev(0.0, 2.0, "h2d")
        rep = energy_report(V100, [ev], makespan=2.0)
        expected = V100.idle_power * 2.0 + V100.tdp_watts * V100.copy_power_fraction * 2.0
        assert rep.total_joules == pytest.approx(expected)

    def test_gflops_per_watt(self):
        ev = Ev(0.0, 10.0, "compute", Precision.FP64, flops=1e13)
        rep = energy_report(V100, [ev], makespan=10.0)
        assert rep.gflops_per_watt == pytest.approx((1e13 / 1e9) / rep.total_joules)

    def test_power_trace_clamped_at_tdp(self):
        evs = [Ev(0.0, 1.0, "compute", Precision.FP64) for _ in range(10)]
        samples = power_trace(V100, evs, 1.0, n_samples=20)
        assert all(s.watts <= V100.tdp_watts * 1.1 for s in samples)

    def test_power_trace_shape(self):
        samples = power_trace(V100, [Ev(0.0, 0.5)], 1.0, n_samples=10)
        busy = [s for s in samples if s.time < 0.5]
        idle = [s for s in samples if s.time >= 0.5]
        assert min(b.watts for b in busy) > max(i.watts for i in idle)

    def test_empty_makespan(self):
        assert power_trace(V100, [], 0.0) == []


class TestPowerTraceRegressions:
    """Pin the half-open-mask and below-idle fixes (ISSUE 3 satellites)."""

    def test_event_ending_at_makespan_in_final_sample(self):
        """The trace is closed at the makespan: an event running to the
        end must show in the last sample, not drop to idle there."""
        samples = power_trace(V100, [Ev(0.0, 10.0)], 10.0, n_samples=10)
        assert samples[-1].time == pytest.approx(10.0)
        assert samples[-1].watts > V100.idle_power

    def test_abutting_events_no_double_count_inside(self):
        """Half-open [t0, t1) still holds away from the makespan."""
        evs = [Ev(0.0, 5.0), Ev(5.0, 10.0)]
        samples = power_trace(V100, evs, 10.0, n_samples=10)
        inc = V100.compute_power(Precision.FP64) - V100.idle_power
        at_boundary = [s for s in samples if s.time == pytest.approx(5.0)]
        assert at_boundary
        assert at_boundary[0].watts == pytest.approx(V100.idle_power + inc)

    def test_below_idle_power_subtracts(self):
        """A precision whose compute power sits below idle must pull the
        trace *below* the idle line, not be silently discarded."""
        from dataclasses import replace

        cold = replace(
            V100,
            compute_power_fraction={**V100.compute_power_fraction, Precision.FP16: 0.02},
        )
        inc = cold.compute_power(Precision.FP16) - cold.idle_power
        assert inc < 0.0  # the scenario under test
        samples = power_trace(cold, [Ev(0.0, 10.0, "compute", Precision.FP16)],
                              10.0, n_samples=10)
        assert all(s.watts == pytest.approx(cold.idle_power + inc) for s in samples)

    def test_trapezoid_matches_exact_joules(self):
        """Integrating the sampled trace must agree with the exact
        event-duration integral (non-overlapping events, so the 1.1×TDP
        clamp never bites)."""
        evs = [
            Ev(0.0, 3.0, "compute", Precision.FP64),
            Ev(3.0, 5.0, "h2d"),
            Ev(5.0, 9.0, "compute", Precision.FP16),
        ]
        makespan = 10.0
        rep = energy_report(V100, evs, makespan, n_samples=200)
        samples = power_trace(V100, evs, makespan, n_samples=20000)
        t = np.array([s.time for s in samples])
        w = np.array([s.watts for s in samples])
        integral = float(np.trapezoid(w, t))
        assert integral == pytest.approx(rep.total_joules, rel=1e-3)

    def test_trapezoid_matches_exact_joules_below_idle(self):
        from dataclasses import replace

        cold = replace(
            V100,
            compute_power_fraction={**V100.compute_power_fraction, Precision.FP16: 0.02},
        )
        evs = [Ev(0.0, 8.0, "compute", Precision.FP16)]
        rep = energy_report(cold, evs, 8.0)
        samples = power_trace(cold, evs, 8.0, n_samples=8000)
        t = np.array([s.time for s in samples])
        w = np.array([s.watts for s in samples])
        assert float(np.trapezoid(w, t)) == pytest.approx(rep.total_joules, rel=1e-6)


class TestOccupancy:
    def test_full_busy(self):
        evs = [Ev(0.0, 10.0)]
        assert busy_fraction(evs, 10.0) == pytest.approx(1.0)
        trace = occupancy_trace(evs, 10.0, n_windows=10)
        assert mean_occupancy(trace) == pytest.approx(1.0)

    def test_half_busy(self):
        evs = [Ev(0.0, 5.0)]
        assert busy_fraction(evs, 10.0) == pytest.approx(0.5)

    def test_overlapping_intervals_merged(self):
        evs = [Ev(0.0, 6.0), Ev(4.0, 8.0)]
        assert busy_fraction(evs, 10.0) == pytest.approx(0.8)

    def test_engine_filter(self):
        evs = [Ev(0.0, 10.0, "h2d")]
        assert busy_fraction(evs, 10.0, engine="compute") == 0.0
        assert busy_fraction(evs, 10.0, engine="h2d") == pytest.approx(1.0)

    def test_windowed_trace(self):
        evs = [Ev(0.0, 2.5)]
        trace = occupancy_trace(evs, 10.0, n_windows=4)
        assert [round(s.occupancy, 6) for s in trace] == [1.0, 0.0, 0.0, 0.0]

    def test_partial_window(self):
        evs = [Ev(1.25, 2.5)]
        trace = occupancy_trace(evs, 10.0, n_windows=4)
        assert trace[0].occupancy == pytest.approx(0.5)

    def test_empty(self):
        assert occupancy_trace([], 0.0) == []
        assert mean_occupancy([]) == 0.0
