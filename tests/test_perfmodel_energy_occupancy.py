"""Unit tests for the energy and occupancy post-processing."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.perfmodel.energy import energy_report, power_trace
from repro.perfmodel.gpus import V100
from repro.perfmodel.occupancy import busy_fraction, mean_occupancy, occupancy_trace
from repro.precision import Precision


@dataclass(frozen=True)
class Ev:
    t_start: float
    t_end: float
    engine: str = "compute"
    precision: Precision = Precision.FP64
    flops: float = 0.0


class TestEnergy:
    def test_idle_only(self):
        rep = energy_report(V100, [], makespan=10.0)
        assert rep.total_joules == pytest.approx(V100.idle_power * 10.0)
        assert rep.gflops_per_watt == 0.0

    def test_compute_energy_additive(self):
        ev = Ev(0.0, 4.0, "compute", Precision.FP64, flops=1e12)
        rep = energy_report(V100, [ev], makespan=10.0)
        expected = V100.idle_power * 10.0 + (
            V100.compute_power(Precision.FP64) - V100.idle_power
        ) * 4.0
        assert rep.total_joules == pytest.approx(expected)
        assert rep.total_flops == 1e12

    def test_fp16_cheaper_than_fp64(self):
        e64 = energy_report(V100, [Ev(0, 5, "compute", Precision.FP64)], 5.0)
        e16 = energy_report(V100, [Ev(0, 5, "compute", Precision.FP16)], 5.0)
        assert e16.total_joules < e64.total_joules

    def test_copy_engine_adder(self):
        ev = Ev(0.0, 2.0, "h2d")
        rep = energy_report(V100, [ev], makespan=2.0)
        expected = V100.idle_power * 2.0 + V100.tdp_watts * V100.copy_power_fraction * 2.0
        assert rep.total_joules == pytest.approx(expected)

    def test_gflops_per_watt(self):
        ev = Ev(0.0, 10.0, "compute", Precision.FP64, flops=1e13)
        rep = energy_report(V100, [ev], makespan=10.0)
        assert rep.gflops_per_watt == pytest.approx((1e13 / 1e9) / rep.total_joules)

    def test_power_trace_clamped_at_tdp(self):
        evs = [Ev(0.0, 1.0, "compute", Precision.FP64) for _ in range(10)]
        samples = power_trace(V100, evs, 1.0, n_samples=20)
        assert all(s.watts <= V100.tdp_watts * 1.1 for s in samples)

    def test_power_trace_shape(self):
        samples = power_trace(V100, [Ev(0.0, 0.5)], 1.0, n_samples=10)
        busy = [s for s in samples if s.time < 0.5]
        idle = [s for s in samples if s.time >= 0.5]
        assert min(b.watts for b in busy) > max(i.watts for i in idle)

    def test_empty_makespan(self):
        assert power_trace(V100, [], 0.0) == []


class TestOccupancy:
    def test_full_busy(self):
        evs = [Ev(0.0, 10.0)]
        assert busy_fraction(evs, 10.0) == pytest.approx(1.0)
        trace = occupancy_trace(evs, 10.0, n_windows=10)
        assert mean_occupancy(trace) == pytest.approx(1.0)

    def test_half_busy(self):
        evs = [Ev(0.0, 5.0)]
        assert busy_fraction(evs, 10.0) == pytest.approx(0.5)

    def test_overlapping_intervals_merged(self):
        evs = [Ev(0.0, 6.0), Ev(4.0, 8.0)]
        assert busy_fraction(evs, 10.0) == pytest.approx(0.8)

    def test_engine_filter(self):
        evs = [Ev(0.0, 10.0, "h2d")]
        assert busy_fraction(evs, 10.0, engine="compute") == 0.0
        assert busy_fraction(evs, 10.0, engine="h2d") == pytest.approx(1.0)

    def test_windowed_trace(self):
        evs = [Ev(0.0, 2.5)]
        trace = occupancy_trace(evs, 10.0, n_windows=4)
        assert [round(s.occupancy, 6) for s in trace] == [1.0, 0.0, 0.0, 0.0]

    def test_partial_window(self):
        evs = [Ev(1.25, 2.5)]
        trace = occupancy_trace(evs, 10.0, n_windows=4)
        assert trace[0].occupancy == pytest.approx(0.5)

    def test_empty(self):
        assert occupancy_trace([], 0.0) == []
        assert mean_occupancy([]) == 0.0
