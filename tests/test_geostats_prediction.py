"""Unit tests for kriging prediction."""

import numpy as np
import pytest

from repro.core.config import MPConfig
from repro.geostats.generator import Dataset, SyntheticField
from repro.geostats.prediction import krige
from repro.precision import Precision


@pytest.fixture(scope="module")
def split_field():
    field = SyntheticField.matern_2d(n=196, range_=0.15, smoothness=0.5, seed=8)
    full = field.sample()
    rng = np.random.default_rng(0)
    idx = rng.permutation(full.n)
    train = Dataset(full.locations[idx[:160]], full.z[idx[:160]], full.model,
                    full.theta_true)
    return train, full.locations[idx[160:]], full.z[idx[160:]], field.theta


def _config(acc=1e-9):
    return MPConfig(accuracy=acc, tile_size=20)


class TestKrige:
    def test_shapes(self, split_field):
        train, locs, _z, theta = split_field
        out = krige(train, locs, theta, config=_config())
        assert out.mean.shape == (36,)
        assert out.variance.shape == (36,)
        assert out.theta == tuple(theta)

    def test_beats_zero_predictor(self, split_field):
        train, locs, z, theta = split_field
        out = krige(train, locs, theta, config=_config())
        rmse = np.sqrt(np.mean((out.mean - z) ** 2))
        zero_rmse = np.sqrt(np.mean(z**2))
        assert rmse < 0.8 * zero_rmse

    def test_variance_bounds(self, split_field):
        train, locs, _z, theta = split_field
        out = krige(train, locs, theta, config=_config())
        assert np.all(out.variance >= -1e-8)
        assert np.all(out.variance <= theta[0] + 1e-8)  # conditioning reduces variance
        assert np.all(out.stddev >= 0.0)

    def test_interpolates_observations(self, split_field):
        """Kriging at observed points reproduces the data (no nugget)."""
        train, _locs, _z, theta = split_field
        out = krige(train, train.locations[:10], theta, config=_config())
        assert np.allclose(out.mean, train.z[:10], atol=1e-5)
        assert np.all(out.variance[:10] < 1e-5)

    def test_calibration(self, split_field):
        train, locs, z, theta = split_field
        out = krige(train, locs, theta, config=_config())
        inside = np.abs(z - out.mean) <= 1.96 * np.maximum(out.stddev, 1e-12)
        assert np.mean(inside) > 0.7  # 95 % nominal, small-sample slack

    def test_exact_vs_mixed_precision_close(self, split_field):
        train, locs, _z, theta = split_field
        exact = krige(train, locs, theta,
                      config=MPConfig(accuracy=1e-15, formats=(Precision.FP64,),
                                      tile_size=20))
        mixed = krige(train, locs, theta, config=_config(1e-9))
        assert np.allclose(exact.mean, mixed.mean, atol=1e-4)

    def test_validates_locations(self, split_field):
        train, _locs, _z, theta = split_field
        with pytest.raises(ValueError):
            krige(train, np.zeros((5, 3)), theta)
