"""Unit tests for MPConfig, the solver facade, and the analytic model."""

import numpy as np
import pytest

from repro.core.config import ConversionStrategy, MPConfig
from repro.core.precision_map import two_precision_map, uniform_map
from repro.core.solver import MPCholeskySolver, simulate_cholesky
from repro.perfmodel.analytic import analytic_cholesky
from repro.perfmodel.gpus import SUMMIT_NODE, V100
from repro.precision import ADAPTIVE_FORMATS, Precision
from repro.runtime.platform import Platform


class TestMPConfig:
    def test_defaults(self):
        cfg = MPConfig()
        assert cfg.accuracy == 1e-9
        assert cfg.formats == ADAPTIVE_FORMATS
        assert cfg.strategy == ConversionStrategy.AUTO
        assert cfg.tile_size == 2048

    def test_validation(self):
        with pytest.raises(ValueError):
            MPConfig(accuracy=0.0)
        with pytest.raises(ValueError):
            MPConfig(accuracy=2.0)
        with pytest.raises(ValueError):
            MPConfig(tile_size=0)
        with pytest.raises(ValueError):
            MPConfig(formats=(Precision.FP32,))

    def test_with_accuracy(self):
        cfg = MPConfig(accuracy=1e-4, tile_size=128)
        cfg2 = cfg.with_accuracy(1e-8)
        assert cfg2.accuracy == 1e-8 and cfg2.tile_size == 128

    def test_fp64_only(self):
        cfg = MPConfig.fp64_only()
        assert cfg.formats == (Precision.FP64,)

    def test_two_precision(self):
        cfg = MPConfig.two_precision(Precision.FP16)
        assert Precision.FP16 in cfg.formats and Precision.FP64 in cfg.formats


class TestSolver:
    def test_plan_and_factorize(self, matern_cov_160):
        dense = matern_cov_160.to_dense() + 0.01 * np.eye(160)
        from repro.tiles.tilematrix import TiledSymmetricMatrix

        mat = TiledSymmetricMatrix.from_dense(dense, 20)
        solver = MPCholeskySolver(MPConfig(accuracy=1e-4, tile_size=20))
        plan = solver.plan(mat)
        assert "STC" in plan.summary()
        result = solver.factorize(mat, plan)
        l = result.factor.lower_dense()
        rel = np.linalg.norm(l @ l.T - dense) / np.linalg.norm(dense)
        assert rel < 1e-2
        # logdet/solve helpers
        rhs = np.ones(160)
        x = MPCholeskySolver.solve(result, rhs)
        assert np.linalg.norm(dense @ x - rhs) / np.linalg.norm(rhs) < 1e-2
        assert np.isfinite(MPCholeskySolver.logdet(result))

    def test_factorize_via_runtime(self, tiled_96):
        solver = MPCholeskySolver(MPConfig(accuracy=1e-6, tile_size=16))
        factor, report = solver.factorize_via_runtime(tiled_96)
        assert report.makespan > 0
        # runtime path computes the same factor as the sequential path
        seq = solver.factorize(tiled_96)
        assert np.array_equal(factor.lower_dense(), seq.factor.lower_dense())


class TestAnalyticModel:
    def test_agrees_with_simulator_single_gpu(self):
        nb = 2048
        plat = Platform.single_gpu(V100)
        for prec in (Precision.FP64, Precision.FP16):
            nt = 16
            kmap = (uniform_map(nt, prec) if prec == Precision.FP64
                    else two_precision_map(nt, prec))
            sim = simulate_cholesky(nt * nb, nb, kmap, plat, record_events=False)
            ana = analytic_cholesky(nt * nb, nb, kmap, plat)
            assert ana.seconds == pytest.approx(sim.makespan, rel=0.25)

    def test_weak_scaling_monotone_throughput(self):
        nb = 2048
        rows = []
        for nodes in (1, 4, 16):
            nt = int(14 * (nodes * 6) ** 0.5)
            plat = Platform(node=SUMMIT_NODE, n_nodes=nodes)
            rep = analytic_cholesky(nt * nb, nb, two_precision_map(nt, Precision.FP16), plat)
            rows.append(rep.tflops)
        assert rows[0] < rows[1] < rows[2]

    def test_strong_scaling_time_drops(self):
        nb = 2048
        nt = 96
        times = []
        for nodes in (2, 8, 32):
            plat = Platform(node=SUMMIT_NODE, n_nodes=nodes)
            rep = analytic_cholesky(nt * nb, nb, uniform_map(nt, Precision.FP64), plat)
            times.append(rep.seconds)
        assert times[0] > times[1] > times[2]

    def test_mp_faster_than_fp64_at_scale(self):
        nb = 2048
        nt = 64
        plat = Platform(node=SUMMIT_NODE, n_nodes=8)
        t64 = analytic_cholesky(nt * nb, nb, uniform_map(nt, Precision.FP64), plat).seconds
        t16 = analytic_cholesky(nt * nb, nb, two_precision_map(nt, Precision.FP16), plat).seconds
        assert t16 < t64

    def test_size_validation(self):
        with pytest.raises(ValueError):
            analytic_cholesky(100, 16, uniform_map(5, Precision.FP64),
                              Platform.single_gpu(V100))

    def test_report_fields(self):
        plat = Platform(node=SUMMIT_NODE, n_nodes=2)
        rep = analytic_cholesky(16 * 2048, 2048, uniform_map(16, Precision.FP64), plat)
        assert rep.nic_bytes > 0
        assert rep.h2d_bytes > 0
        assert rep.seconds >= rep.latency_seconds
        # POTRF nb³/3 ×16, TRSM+SYRK nb³ each ×120, GEMM 2nb³ ×560
        assert rep.total_flops == pytest.approx(
            16 * 2048**3 / 3 + 120 * 2 * 2048**3 + 560 * 2 * 2048**3, rel=0.01
        )
