"""Unit tests for the numeric tile kernels."""

import numpy as np
import pytest
import scipy.linalg

from repro.precision import Precision
from repro.tiles.kernels import (
    NotPositiveDefiniteError,
    gemm,
    potrf,
    syrk,
    trsm,
    trsm_execution_precision,
)
from tests.conftest import random_spd


class TestPotrf:
    def test_factorizes(self, rng):
        c = random_spd(16, rng)
        l = potrf(c)
        assert np.allclose(l @ l.T, c)
        assert np.allclose(l, np.tril(l))

    def test_raises_on_indefinite(self):
        with pytest.raises(NotPositiveDefiniteError):
            potrf(np.array([[1.0, 2.0], [2.0, 1.0]]))

    def test_error_is_linalgerror(self):
        """MLE drivers catch LinAlgError; our subclass must be one."""
        assert issubclass(NotPositiveDefiniteError, np.linalg.LinAlgError)


class TestTrsmExecutionPrecision:
    def test_fp64_native(self):
        assert trsm_execution_precision(Precision.FP64) == Precision.FP64

    @pytest.mark.parametrize(
        "prec",
        [Precision.FP32, Precision.TF32, Precision.FP16_32, Precision.BF16_32, Precision.FP16],
    )
    def test_fp32_floor(self, prec):
        assert trsm_execution_precision(prec) == Precision.FP32


class TestTrsm:
    def test_fp64_exact(self, rng):
        l = np.tril(random_spd(12, rng))
        l = np.linalg.cholesky(l @ l.T + 12 * np.eye(12))
        c = rng.standard_normal((12, 12))
        out = trsm(l, c, precision=Precision.FP64)
        assert np.allclose(out @ l.T, c)

    def test_fp32_close(self, rng):
        l = np.linalg.cholesky(random_spd(12, rng))
        c = rng.standard_normal((12, 12))
        out64 = trsm(l, c, precision=Precision.FP64)
        out16 = trsm(l, c, precision=Precision.FP16)  # runs in FP32
        rel = np.linalg.norm(out16 - out64) / np.linalg.norm(out64)
        assert 0.0 < rel < 1e-4

    def test_output_contiguous(self, rng):
        l = np.linalg.cholesky(random_spd(8, rng))
        out = trsm(l, rng.standard_normal((8, 8)))
        assert out.flags["C_CONTIGUOUS"]


class TestSyrk:
    def test_fp64_update(self, rng):
        a = rng.standard_normal((10, 10))
        c = random_spd(10, rng)
        out = syrk(a, c)
        assert np.allclose(out, c - a @ a.T)

    def test_result_symmetric(self, rng):
        out = syrk(rng.standard_normal((10, 10)), random_spd(10, rng))
        assert np.array_equal(out, out.T)

    def test_payload_quantization(self, rng):
        a = rng.standard_normal((10, 10))
        c = random_spd(10, rng)
        out64 = syrk(a, c, precision=Precision.FP64)
        out16 = syrk(a, c, precision=Precision.FP16)
        assert not np.allclose(out64, out16)  # quantised payload differs
        assert np.linalg.norm(out16 - out64) / np.linalg.norm(out64) < 1e-2


class TestGemm:
    def test_fp64_update(self, rng):
        a, b = rng.standard_normal((8, 8)), rng.standard_normal((8, 8))
        c = rng.standard_normal((8, 8))
        assert np.allclose(gemm(a, b, c), c - a @ b.T)

    @pytest.mark.parametrize("prec", [Precision.FP32, Precision.FP16_32, Precision.FP16])
    def test_reduced_precision_error_scales(self, prec, rng):
        a, b = rng.standard_normal((16, 16)), rng.standard_normal((16, 16))
        c = rng.standard_normal((16, 16))
        out = gemm(a, b, c, precision=prec)
        ref = c - a @ b.T
        rel = np.linalg.norm(out - ref) / np.linalg.norm(ref)
        assert rel < 1e-1
        assert rel > 0.0


class TestKernelComposition:
    def test_one_tile_cholesky_iteration(self, rng):
        """POTRF + TRSM + SYRK reproduce a 2×2 block factorization."""
        n, nb = 24, 12
        spd = random_spd(n, rng)
        c00, c10, c11 = spd[:nb, :nb], spd[nb:, :nb], spd[nb:, nb:]
        l00 = potrf(c00)
        l10 = trsm(l00, c10)
        s11 = syrk(l10, c11)
        l11 = potrf(s11)
        full = np.linalg.cholesky(spd)
        assert np.allclose(l00, full[:nb, :nb])
        assert np.allclose(l10, full[nb:, :nb])
        assert np.allclose(l11, full[nb:, nb:])
