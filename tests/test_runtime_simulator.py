"""Unit and behavioural tests for the discrete-event simulator."""

import pytest

from repro.core.config import ConversionStrategy
from repro.core.precision_map import two_precision_map, uniform_map
from repro.core.solver import simulate_cholesky
from repro.perfmodel.gpus import GPUSpec, NodeSpec, V100
from repro.perfmodel.kernels import KernelKind, kernel_time
from repro.precision import Precision
from repro.runtime.platform import Platform

NB = 512


def _platform(n_gpus=1, n_nodes=1, gpu=V100, host_memory=256e9):
    node = NodeSpec(
        name="test",
        gpu=gpu,
        gpus_per_node=n_gpus,
        host_memory_bytes=host_memory,
        nic_bandwidth=25e9,
        nic_latency=1.5e-6,
    )
    return Platform(node=node, n_nodes=n_nodes)


def _run(nt=6, prec=Precision.FP64, platform=None, strategy=ConversionStrategy.AUTO,
         nb=NB, **kw):
    platform = platform or _platform()
    kmap = uniform_map(nt, prec) if prec == Precision.FP64 else two_precision_map(nt, prec)
    return simulate_cholesky(nt * nb, nb, kmap, platform, strategy=strategy, **kw)


class TestBasics:
    def test_all_tasks_execute(self):
        rep = _run(nt=5)
        nt = 5
        expected = nt + 2 * (nt * (nt - 1) // 2) + nt * (nt - 1) * (nt - 2) // 6
        assert rep.stats.n_tasks == expected
        assert len(rep.task_end) == expected

    def test_makespan_bounds(self):
        """Makespan ≥ serial compute on 1 GPU ≥ critical path."""
        rep = _run(nt=6)
        total_kernel = sum(
            kernel_time(V100, t, NB, Precision.FP64) * c
            for t, c in {
                KernelKind.POTRF: 6,
                KernelKind.TRSM: 15,
                KernelKind.SYRK: 15,
                KernelKind.GEMM: 20,
            }.items()
        )
        assert rep.makespan >= total_kernel * 0.999
        assert rep.makespan < total_kernel * 2.0  # transfers mostly overlap

    def test_flops_accounted(self):
        rep = _run(nt=4)
        nb3 = float(NB) ** 3
        expected = 4 * nb3 / 3 + 6 * (2 * nb3 + NB * NB) + 4 * 2 * nb3
        assert rep.stats.total_flops == pytest.approx(expected, rel=1e-6)

    def test_initial_h2d_volume_fp64(self):
        """Every matrix tile crosses the link once at FP64 (in-memory case)."""
        rep = _run(nt=5)
        tiles = 5 * 6 // 2
        assert rep.stats.h2d_bytes == tiles * NB * NB * 8
        assert rep.stats.n_evictions == 0

    def test_deterministic(self):
        a = _run(nt=6)
        b = _run(nt=6)
        assert a.makespan == b.makespan
        assert a.task_end == b.task_end

    def test_trace_events_recorded(self):
        rep = _run(nt=4, record_events=True)
        engines = {e.engine for e in rep.trace.events}
        assert "compute" in engines and "h2d" in engines
        assert rep.trace.busy_seconds("compute", 0) > 0

    def test_record_events_off(self):
        rep = _run(nt=4, record_events=False)
        assert rep.trace.events == []
        assert rep.stats.n_tasks > 0


class TestPrecisionEffects:
    def test_fp16_config_faster(self):
        # at nb=512 the FP64-bound panel kernels cap the gain well below
        # the Fig. 8 (nb=2048) speedups; the ordering must still hold
        t64 = _run(nt=8, prec=Precision.FP64).makespan
        t16 = _run(nt=8, prec=Precision.FP16).makespan
        assert t16 < t64 / 1.3

    def test_fp16_moves_fewer_bytes(self):
        b64 = _run(nt=8, prec=Precision.FP64).stats.h2d_bytes
        b16 = _run(nt=8, prec=Precision.FP16).stats.h2d_bytes
        assert b16 < b64

    def test_stc_fewer_conversions_than_ttc(self):
        stc = _run(nt=8, prec=Precision.FP16, strategy=ConversionStrategy.AUTO)
        ttc = _run(nt=8, prec=Precision.FP16, strategy=ConversionStrategy.TTC)
        assert stc.stats.n_conversions < ttc.stats.n_conversions
        assert stc.makespan <= ttc.makespan

    def test_ttc_moves_more_bytes_multi_gpu(self):
        # on a single GPU producer == consumer, so payloads never cross the
        # link; the byte saving materialises once consumers are remote
        p = _platform(4)
        stc = _run(nt=8, prec=Precision.FP16, strategy=ConversionStrategy.AUTO, platform=p)
        ttc = _run(nt=8, prec=Precision.FP16, strategy=ConversionStrategy.TTC, platform=p)
        assert stc.stats.h2d_bytes < ttc.stats.h2d_bytes

    def test_h2d_split_by_precision(self):
        rep = _run(nt=8, prec=Precision.FP16, strategy=ConversionStrategy.AUTO)
        by_prec = rep.stats.h2d_bytes_by_precision
        assert Precision.FP16 in by_prec or Precision.FP32 in by_prec


class TestMemoryPressure:
    def test_eviction_when_matrix_exceeds_gpu(self):
        tiny_gpu = GPUSpec(
            name="tiny",
            peak_flops=V100.peak_flops,
            sustained_fraction=V100.sustained_fraction,
            half_perf_size=V100.half_perf_size,
            memory_bytes=8 * NB * NB,  # a handful of FP64 tiles
            memory_bandwidth=V100.memory_bandwidth,
            host_link_bandwidth=V100.host_link_bandwidth,
            host_link_latency=V100.host_link_latency,
            tdp_watts=V100.tdp_watts,
            compute_power_fraction=V100.compute_power_fraction,
        )
        rep = _run(nt=8, platform=_platform(gpu=tiny_gpu))
        assert rep.stats.n_evictions > 0
        assert rep.stats.d2h_bytes > 0
        # reloads inflate h2d beyond the matrix size
        assert rep.stats.h2d_bytes > 36 * NB * NB * 8

    def test_enforce_memory_off(self):
        rep = _run(nt=8, enforce_memory=False)
        assert rep.stats.n_evictions == 0

    def test_every_eviction_counted_free_drops_not_charged(self):
        """Regression: ``n_evictions`` counts *all* evictions, while the
        d2h engine (EVICT trace events) is only charged for entries whose
        host copy is missing or stale.  Clean host-seeded tiles dropped
        under pressure must therefore appear in the counter but not the
        trace."""
        tiny_gpu = GPUSpec(
            name="tiny",
            peak_flops=V100.peak_flops,
            sustained_fraction=V100.sustained_fraction,
            half_perf_size=V100.half_perf_size,
            memory_bytes=8 * NB * NB,
            memory_bandwidth=V100.memory_bandwidth,
            host_link_bandwidth=V100.host_link_bandwidth,
            host_link_latency=V100.host_link_latency,
            tdp_watts=V100.tdp_watts,
            compute_power_fraction=V100.compute_power_fraction,
        )
        rep = _run(nt=8, platform=_platform(gpu=tiny_gpu))
        charged = [e for e in rep.trace.events if e.kind == "EVICT"]
        assert rep.stats.n_evictions >= len(charged)
        # the seeds loaded from host and evicted before any write are free
        assert rep.stats.n_evictions > len(charged)
        # and the charged ones are the only d2h-EVICT traffic
        assert sum(e.bytes for e in charged) <= rep.stats.d2h_bytes


class TestMultiGPU:
    def test_speedup_with_gpus(self):
        t1 = _run(nt=12, platform=_platform(1)).makespan
        t4 = _run(nt=12, platform=_platform(4)).makespan
        assert t4 < t1 / 1.8

    def test_multi_gpu_traffic_includes_staging(self):
        rep1 = _run(nt=10, platform=_platform(1))
        rep4 = _run(nt=10, platform=_platform(4))
        # remote consumers force d2h staging that a single GPU never pays
        assert rep4.stats.d2h_bytes > rep1.stats.d2h_bytes

    def test_multi_node_uses_nic(self):
        rep = _run(nt=10, platform=_platform(n_gpus=2, n_nodes=2))
        assert rep.stats.nic_bytes > 0

    def test_single_node_no_nic(self):
        rep = _run(nt=10, platform=_platform(n_gpus=4, n_nodes=1))
        assert rep.stats.nic_bytes == 0

    def test_gflops_property(self):
        rep = _run(nt=8)
        assert rep.gflops == pytest.approx(rep.stats.total_flops / rep.makespan / 1e9)


class TestStreamingSimulation:
    """simulate_stream: lazy k-major emission ≡ the materialising path."""

    @pytest.mark.parametrize("prec", [Precision.FP64, Precision.FP16])
    @pytest.mark.parametrize("n_gpus,n_nodes", [(1, 1), (2, 2)])
    def test_stream_matches_materialize(self, prec, n_gpus, n_nodes):
        import hashlib

        def _hash(trace):
            tuples = sorted(
                (e.rank, e.engine, e.kind, e.t_start, e.t_end,
                 e.precision, e.bytes, e.flops, e.site)
                for e in trace.events
            )
            return hashlib.sha256(repr(tuples).encode()).hexdigest()

        plat = _platform(n_gpus=n_gpus, n_nodes=n_nodes)
        base = _run(nt=10, prec=prec, platform=plat)
        stream = _run(nt=10, prec=prec, platform=plat, stream=True)
        assert stream.makespan == base.makespan
        assert stream.stats.to_dict() == base.stats.to_dict()
        assert _hash(stream.trace) == _hash(base.trace)

    def test_stream_matches_materialize_fifo(self):
        base = _run(nt=8, policy="fifo")
        stream = _run(nt=8, policy="fifo", stream=True)
        assert stream.makespan == base.makespan

    def test_small_lookahead_completes_validly(self):
        """A tight emission window must still drain the whole DAG; the
        schedule may differ (fewer ready choices) but stays feasible."""
        nt = 12
        expected = nt + nt * (nt - 1) + nt * (nt - 1) * (nt - 2) // 6
        rep = _run(nt=nt, prec=Precision.FP16, stream=True, lookahead=32)
        assert rep.stats.n_tasks == expected
        assert rep.makespan > 0.0
        assert rep.peak_live_tasks < expected

    def test_peak_live_tasks_bounded_by_window(self):
        rep = _run(nt=16, stream=True, lookahead=256)
        n = rep.stats.n_tasks
        assert 0 < rep.peak_live_tasks < n
        # the window is a soft target (it widens when the heap drains),
        # but it must stay far below the full task list
        assert rep.peak_live_tasks <= n // 2

    def test_materialized_report_counts_all_tasks_live(self):
        rep = _run(nt=6)
        assert rep.peak_live_tasks == rep.stats.n_tasks

    @pytest.mark.parametrize("policy", ["critical-path", "comm-aware-eft"])
    def test_full_graph_policies_rejected(self, policy):
        with pytest.raises(ValueError, match="full graph"):
            _run(nt=6, stream=True, policy=policy)

    def test_stream_never_materializes_task_list(self):
        """The streaming path must retire tasks as they finish: the
        graph it builds internally keeps no more Task objects live than
        the emission window at any point (checked via peak_live_tasks
        and the retire counter reaching n)."""
        from repro.core import stream_cholesky_tasks
        from repro.core.precision_map import two_precision_map
        from repro.runtime.simulator import simulate_stream

        nt, nb = 12, 256
        kmap = two_precision_map(nt, Precision.FP16)
        plat = _platform()
        source = stream_cholesky_tasks(
            nt * nb, nb, kmap, grid=plat.process_grid())
        rep = simulate_stream(source, plat, nb, lookahead=64,
                              record_events=False)
        expected = nt + nt * (nt - 1) + nt * (nt - 1) * (nt - 2) // 6
        assert rep.stats.n_tasks == expected
        assert rep.peak_live_tasks < expected // 2
