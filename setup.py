"""Legacy setup shim: the offline environment lacks the `wheel` package
that PEP 660 editable installs require, so `pip install -e .` falls back
to this file (or use `python setup.py develop`)."""
from setuptools import setup

setup()
