#!/usr/bin/env python3
"""3D geospatial modeling: a soil-moisture-with-depth scenario.

The paper's 3D-sqexp application models fields varying in (x, y, depth).
This example builds a 3D squared-exponential field (with the measurement
-error nugget that makes the sqexp kernel numerically factorable — see
DESIGN.md), fits it at the paper's 3D accuracy (1e-8), and inspects how
much of the planned computation the adaptive framework keeps in high
precision — the paper's observation that 3D-sqexp is the most
resource-intensive of its applications.

Run:  python examples/soil_moisture_3d.py
"""

from repro import MPConfig, MPCholeskySolver
from repro.geostats import SyntheticField, build_tiled_covariance, fit_mle
from repro.precision import Precision


def main() -> None:
    field = SyntheticField.sqexp_3d(
        n=512, variance=1.0, range_=0.1, seed=11, nugget=0.01
    )
    dataset = field.sample()
    print(f"3D dataset: n={dataset.n} (8×8×8 jittered grid), θ_true={field.theta}")

    # plan at the paper's 3D accuracy and inspect the precision profile
    config = MPConfig(accuracy=1e-8, tile_size=64)
    solver = MPCholeskySolver(config)
    cov = build_tiled_covariance(
        dataset.locations, dataset.model, field.theta, nb=64, nugget=dataset.nugget
    )
    plan = solver.plan(cov)
    fr = plan.kernel_map.tile_fractions()
    high = fr.get(Precision.FP64, 0.0) + fr.get(Precision.FP32, 0.0)
    print(f"\nprecision plan at u_req=1e-8: {plan.summary()}")
    print(f"high-precision (FP64+FP32) tile share: {high * 100:.1f}%")
    print(plan.kernel_map.render())

    # factor once through the runtime to see the simulated cost profile
    factor, report = solver.factorize_via_runtime(cov)
    print(f"\nsimulated factorization: {report.makespan * 1e3:.2f} ms on one V100, "
          f"{report.stats.n_tasks} tasks, "
          f"{report.stats.h2d_bytes / 1e6:.1f} MB host→device")

    # fit the MLE at 1e-8 vs exact
    exact = fit_mle(dataset, exact=True, tile_size=64, max_evals=200, xtol=1e-7)
    adaptive = fit_mle(dataset, accuracy=1e-8, tile_size=64, max_evals=200, xtol=1e-7)
    print(f"\nexact θ̂   : {tuple(round(v, 4) for v in exact.theta_hat)}")
    print(f"adaptive θ̂: {tuple(round(v, 4) for v in adaptive.theta_hat)}")
    print("\nExpected: 1e-8 estimates sit on top of the exact ones (Fig. 6).")


if __name__ == "__main__":
    main()
