#!/usr/bin/env python3
"""A tour of the PaRSEC-like runtime substrate.

Builds the same mixed-precision Cholesky three ways and shows the
runtime tooling around it:

1. the PTG (parameterized task graph) and the DTD (dynamic task
   discovery) front ends produce the *same* DAG;
2. the DAG executes numerically — sequentially, on host threads, and
   across OS processes with wire-quantised payloads — all bit-identical;
3. the same DAG is priced on a simulated V100 and the trace rendered as
   an ASCII Gantt chart plus a Chrome/Perfetto JSON file.

Run:  python examples/runtime_tour.py
"""

import json

import numpy as np

from repro.core import build_cholesky_dag, build_cholesky_dag_dtd, build_precision_map
from repro.perfmodel import V100
from repro.runtime import (
    Platform,
    ascii_gantt,
    execute_numeric,
    execute_numeric_distributed,
    execute_numeric_parallel,
    simulate,
    to_chrome_trace,
)
from repro.tiles import ProcessGrid, TiledSymmetricMatrix, tile_norms


def main() -> None:
    rng = np.random.default_rng(0)
    n, nb = 96, 16
    a = rng.standard_normal((n, n))
    mat = TiledSymmetricMatrix.from_dense(a @ a.T + n * np.eye(n), nb)
    kmap = build_precision_map(tile_norms(mat), 1e-6)

    # 1. two DSLs, one DAG
    grid = ProcessGrid(2, 2)
    ptg = build_cholesky_dag(n, nb, kmap, grid=grid)
    dtd = build_cholesky_dag_dtd(n, nb, kmap, grid=grid)
    print(f"PTG: {len(ptg.graph)} tasks {ptg.graph.counts_by_kind()}")
    print(f"DTD: {len(dtd.graph)} tasks — same census: "
          f"{ptg.graph.counts_by_kind() == dtd.graph.counts_by_kind()}")

    # 2. three executors, one answer
    seq = execute_numeric(ptg.graph, mat).lower_dense()
    par = execute_numeric_parallel(ptg.graph, mat, n_threads=4).lower_dense()
    dist = execute_numeric_distributed(ptg.graph, mat, grid.size).lower_dense()
    print(f"\nsequential == threaded: {np.array_equal(seq, par)}")
    print(f"sequential == distributed (4 processes): {np.array_equal(seq, dist)}")
    rel = np.linalg.norm(seq @ seq.T - mat.to_dense()) / np.linalg.norm(mat.to_dense())
    print(f"factorization residual: {rel:.2e}")

    # 3. price it on a simulated 4×V100 node and look at the timeline
    from repro.perfmodel import NodeSpec

    node = NodeSpec("tour", V100, grid.size, 256e9, 25e9, 1.5e-6)
    platform = Platform(node=node, n_nodes=1)
    report = simulate(ptg.graph, platform, nb)
    print(f"\nsimulated on {grid.size}xV100: {report.makespan * 1e3:.3f} ms, "
          f"{report.stats.h2d_bytes / 1e3:.0f} kB host→device, "
          f"{report.stats.n_conversions} conversions")
    print()
    print(ascii_gantt(report.trace.events, report.makespan, width=80))

    path = "results/runtime_tour_trace.json"
    import os

    os.makedirs("results", exist_ok=True)
    with open(path, "w") as fh:
        fh.write(to_chrome_trace(report.trace.events))
    n_events = len(json.load(open(path))["traceEvents"])
    print(f"\nChrome/Perfetto trace with {n_events} events written to {path}")


if __name__ == "__main__":
    main()
