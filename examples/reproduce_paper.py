#!/usr/bin/env python3
"""One-screen reproduction summary (reduced scale, ~2 minutes).

Runs a condensed version of every headline result and prints a
paper-vs-measured scoreboard.  The full-scale regeneration lives in
``pytest benchmarks/ --benchmark-only``; this script is the quick
smoke-check a reader runs first.

Run:  python examples/reproduce_paper.py
"""

import time

import numpy as np

from repro.bench import (
    APPLICATIONS,
    app_kernel_map,
    fig8_rows,
    format_table,
    table2_rows,
)
from repro.core import two_precision_map, uniform_map
from repro.geostats import SyntheticField, fit_mle
from repro.perfmodel import SUMMIT_NODE, V100, verify_table2
from repro.perfmodel.analytic import analytic_cholesky
from repro.precision import Precision, gemm_relative_error
from repro.runtime import Platform


def main() -> None:
    t0 = time.time()
    rows = []

    # Table II calibration
    rep = verify_table2()
    rows.append(["Table II (V100 move/GEMM times)", "exact measurements",
                 f"all 30 cells within {rep.max_rel_error * 100:.0f}%",
                 "PASS" if rep.ok else "FAIL"])

    # Fig. 1 accuracy ordering
    errs = {p: gemm_relative_error(512, p) for p in
            (Precision.FP32, Precision.FP16_32, Precision.FP16)}
    ok = errs[Precision.FP32] < errs[Precision.FP16_32] <= errs[Precision.FP16]
    rows.append(["Fig. 1 (GEMM error ordering)", "FP32 < FP16_32 ≤ FP16",
                 " < ".join(f"{e:.1e}" for e in errs.values()), "PASS" if ok else "FAIL"])

    # Fig. 5-style: tight accuracy ≡ exact MLE
    ds = SyntheticField.matern_2d(n=196, range_=0.15, smoothness=0.5, seed=1).sample()
    exact = fit_mle(ds, exact=True, tile_size=28, max_evals=120, xtol=1e-6, restarts=0)
    tight = fit_mle(ds, accuracy=1e-9, tile_size=28, max_evals=120, xtol=1e-6, restarts=0)
    ok = np.allclose(exact.theta_hat, tight.theta_hat, rtol=0.05, atol=0.01)
    rows.append(["Figs. 5/6 (tight u_req ≡ exact)", "estimates coincide",
                 f"θ̂ diff {max(abs(a - b) for a, b in zip(exact.theta_hat, tight.theta_hat)):.1e}",
                 "PASS" if ok else "FAIL"])

    # Fig. 7: app precision profiles (small n keeps this fast)
    fr = app_kernel_map(APPLICATIONS["3d-sqexp"], 32768, 2048, samples_per_tile=16
                        ).tile_fractions()
    high = (fr.get(Precision.FP64, 0) + fr.get(Precision.FP32, 0)) * 100
    rows.append(["Fig. 7 (3D-sqexp conservative)", ">60% FP64+FP32",
                 f"{high:.0f}% FP64+FP32", "PASS" if high > 60 else "FAIL"])

    # Fig. 8: STC vs TTC on one V100
    pts = {(p.label, p.strategy): p for p in fig8_rows("V100", (32768,))}
    ratio = pts[("FP64/FP16", "STC")].tflops / pts[("FP64/FP16", "TTC")].tflops
    speedup = pts[("FP64/FP16", "STC")].tflops / pts[("FP64", "STC")].tflops
    rows.append(["Fig. 8 (STC/TTC on V100)", "up to 1.3x", f"{ratio:.2f}x",
                 "PASS" if 1.05 < ratio < 1.6 else "FAIL"])
    rows.append(["Fig. 8 (FP64/FP16 vs FP64)", ">4x", f"{speedup:.1f}x",
                 "PASS" if speedup > 4 else "FAIL"])

    # Fig. 12c: MP effect at 384 GPUs (analytic)
    plat = Platform(node=SUMMIT_NODE, n_nodes=64)
    nt = 128
    t64 = analytic_cholesky(nt * 2048, 2048, uniform_map(nt, Precision.FP64), plat)
    kmap = app_kernel_map(APPLICATIONS["2d-sqexp"], nt * 2048, 2048, samples_per_tile=16)
    tmp = analytic_cholesky(nt * 2048, 2048, kmap, plat)
    sp = t64.seconds / tmp.seconds
    rows.append(["Fig. 12c (2D-sqexp @384 GPUs)", "up to 3.2x vs FP64", f"{sp:.2f}x",
                 "PASS" if 1.3 < sp < 4.5 else "FAIL"])

    print(format_table(["experiment", "paper claim", "measured", "verdict"], rows,
                       title="Reproduction scoreboard (reduced scale)"))
    print(f"\ncompleted in {time.time() - t0:.0f}s — full regeneration: "
          f"pytest benchmarks/ --benchmark-only")


if __name__ == "__main__":
    main()
