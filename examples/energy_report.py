#!/usr/bin/env python3
"""Energy and data-motion report across GPU generations (Fig. 10 style).

Prices the three paper applications and the FP64 baseline on simulated
V100/A100/H100 GPUs and reports runtime, energy, Gflops/Watt, and the
host→device traffic split by payload precision — the quantities the
automated conversion strategy is designed to shrink.

Run:  python examples/energy_report.py  [matrix_size]
"""

import sys

from repro.bench import APPLICATIONS, app_kernel_map, format_table
from repro.core import ConversionStrategy, simulate_cholesky, uniform_map
from repro.perfmodel import GPU_BY_NAME, energy_report
from repro.precision import Precision
from repro.runtime.platform import Platform


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 32768
    nb = 2048
    nt = -(-n // nb)
    print(f"matrix {n} × {n}, tile {nb} (NT={nt})\n")

    for gpu_name in ("V100", "A100", "H100"):
        gpu = GPU_BY_NAME[gpu_name]
        platform = Platform.single_gpu(gpu)
        rows = []
        runs = [("FP64", uniform_map(nt, Precision.FP64))]
        for key, app in APPLICATIONS.items():
            runs.append((app.label, app_kernel_map(app, n, nb, samples_per_tile=24)))
        for label, kmap in runs:
            rep = simulate_cholesky(
                n, nb, kmap, platform, strategy=ConversionStrategy.AUTO
            )
            er = energy_report(
                gpu, rep.trace.events_of_rank(0), rep.makespan,
                total_flops=rep.stats.total_flops,
            )
            h2d = ", ".join(
                f"{p.name}:{b / 1e9:.1f}GB"
                for p, b in sorted(rep.stats.h2d_bytes_by_precision.items(), reverse=True)
            )
            rows.append([
                label,
                rep.makespan,
                rep.stats.tflops,
                er.total_joules / 1e3,
                er.gflops_per_watt,
                h2d,
            ])
        print(format_table(
            ["config", "seconds", "Tflop/s", "kJ", "Gflops/W", "H2D by precision"],
            rows,
            title=f"== {gpu_name} ==",
        ))
        print()


if __name__ == "__main__":
    main()
