#!/usr/bin/env python3
"""Quickstart: adaptive mixed-precision MLE on a synthetic Matérn field.

Generates a 2D Gaussian random field with known parameters, then fits the
maximum likelihood estimate three ways — exact FP64, the adaptive
framework at the paper's tight accuracy (1e-9), and at a loose 1e-2 —
and shows the precision maps the framework planned.

Run:  python examples/quickstart.py
"""

from repro import MPConfig, MPCholeskySolver
from repro.geostats import SyntheticField, build_tiled_covariance, fit_mle


def main() -> None:
    # 1. synthesise a rough Matérn field (θ = σ², β, ν)
    field = SyntheticField.matern_2d(
        n=400, variance=1.0, range_=0.1, smoothness=0.5, seed=42
    )
    dataset = field.sample()
    print(f"synthetic dataset: n={dataset.n}, θ_true={field.theta}")

    # 2. what does the adaptive framework plan for this covariance?
    solver = MPCholeskySolver(MPConfig(accuracy=1e-4, tile_size=50))
    cov = build_tiled_covariance(dataset.locations, dataset.model, field.theta, nb=50)
    plan = solver.plan(cov)
    print("\nprecision plan at u_req=1e-4:")
    print(" ", plan.summary())
    print(plan.kernel_map.render())

    # 3. fit the MLE at three accuracy levels
    for label, kwargs in [
        ("exact FP64", dict(exact=True)),
        ("u_req=1e-9", dict(accuracy=1e-9)),
        ("u_req=1e-2", dict(accuracy=1e-2)),
    ]:
        result = fit_mle(dataset, tile_size=50, max_evals=200, xtol=1e-7, **kwargs)
        theta = ", ".join(f"{v:.4f}" for v in result.theta_hat)
        print(
            f"\n{label:11}: θ̂ = ({theta})  loglik = {result.loglik:.2f}  "
            f"({result.n_evals} evaluations)"
        )

    print("\nExpected: exact and 1e-9 agree closely; 1e-2 drifts (Fig. 5 of the paper).")


if __name__ == "__main__":
    main()
