#!/usr/bin/env python3
"""The paper's future work, realised: mixed precision + tile low-rank.

Section VIII: "we intend to ... combin[e] the strengths of mixed
precisions with tile low-rank (TLR) computations to address the curse of
dimensionality."  This example factors the same Matérn covariance four
ways — dense FP64, dense mixed-precision, TLR, and mixed-precision TLR —
and compares memory footprint, arithmetic volume, and factorization
accuracy, plus an iterative-refinement solve that recovers FP64 accuracy
from the cheapest factor.

Run:  python examples/tlr_future_work.py
"""

import numpy as np

from repro.bench import format_table
from repro.core import (
    build_precision_map,
    mp_cholesky,
    refine_solve,
    two_precision_map,
)
from repro.geostats.covariance import Matern
from repro.geostats.generator import build_tiled_covariance
from repro.geostats.locations import generate_locations
from repro.precision import Precision
from repro.tiles.norms import tile_norms
from repro.tiles.tilematrix import TiledSymmetricMatrix
from repro.tlr import TLRSymmetricMatrix, tlr_cholesky


def main() -> None:
    n, nb = 600, 100
    locs = generate_locations(n, 2, seed=13)
    cov = build_tiled_covariance(locs, Matern(dim=2), (1.0, 0.2, 0.5), nb)
    dense = cov.to_dense() + 0.01 * np.eye(n)
    mat = TiledSymmetricMatrix.from_dense(dense, nb)
    kmap = build_precision_map(tile_norms(mat), 1e-4)

    rows = []

    # dense FP64
    res = mp_cholesky(mat)
    l = res.factor.lower_dense()
    rows.append(["dense FP64", res.factor.storage_bytes() / 1e6,
                 np.linalg.norm(l @ l.T - dense) / np.linalg.norm(dense), "-"])

    # dense mixed precision (the paper's contribution)
    res_mp = mp_cholesky(mat, kmap)
    l = res_mp.factor.lower_dense()
    rows.append(["dense MP (1e-4)", res_mp.factor.storage_bytes() / 1e6,
                 np.linalg.norm(l @ l.T - dense) / np.linalg.norm(dense), "-"])

    # TLR
    tlr = TLRSymmetricMatrix.from_tiled(mat, 1e-6)
    res_tlr = tlr_cholesky(tlr)
    l = np.tril(res_tlr.factor.to_dense())
    rows.append(["TLR (1e-6)", tlr.memory_bytes() / 1e6,
                 np.linalg.norm(l @ l.T - dense) / np.linalg.norm(dense),
                 f"{res_tlr.flop_savings:.2f}x"])

    # MP + TLR: the future-work combination
    res_both = tlr_cholesky(tlr, kernel_map=kmap)
    l = np.tril(res_both.factor.to_dense())
    rows.append(["MP + TLR", tlr.memory_bytes() / 1e6,
                 np.linalg.norm(l @ l.T - dense) / np.linalg.norm(dense),
                 f"{res_both.flop_savings:.2f}x"])

    print(format_table(
        ["variant", "storage MB", "factor residual", "flop savings"],
        rows, title=f"Matérn covariance, n={n}, nb={nb} (mean TLR rank "
                    f"{tlr.mean_rank():.1f})",
    ))

    # cheap factor + iterative refinement → FP64-accurate solve
    rng = np.random.default_rng(1)
    b = rng.standard_normal(n)
    cheap = mp_cholesky(mat, two_precision_map(mat.nt, Precision.FP16))
    ref = refine_solve(mat, cheap, b, tol=1e-12)
    print(f"\nFP64/FP16 factor + iterative refinement: residual "
          f"{ref.final_residual:.2e} in {ref.iterations} iterations "
          f"(converged={ref.converged})")
    print("\nNote: at the paper's tile size (2048) the rank/nb ratio drops "
          "by ~20x,\nso TLR's memory and flop savings grow accordingly.")


if __name__ == "__main__":
    main()
