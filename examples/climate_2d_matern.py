#!/usr/bin/env python3
"""Climate-style workflow: fit a Matérn model, then krige a station grid.

Mirrors the paper's motivating use case (temperature/rainfall-style 2D
fields): estimate θ from scattered observations with the mixed-precision
MLE, then predict at held-out locations and check calibration (RMSE and
the empirical coverage of the 95 % prediction intervals).

Run:  python examples/climate_2d_matern.py
"""

import numpy as np

from repro import MPConfig
from repro.geostats import Dataset, SyntheticField, fit_mle, krige


def main() -> None:
    rng = np.random.default_rng(7)

    # generate one "climate field" and split stations into train/test
    field = SyntheticField.matern_2d(
        n=484, variance=1.2, range_=0.15, smoothness=0.5, seed=7
    )
    full = field.sample()
    idx = rng.permutation(full.n)
    train_idx, test_idx = idx[:400], idx[400:]
    train = Dataset(
        locations=full.locations[train_idx],
        z=full.z[train_idx],
        model=full.model,
        theta_true=full.theta_true,
    )
    test_locs = full.locations[test_idx]
    test_z = full.z[test_idx]
    print(f"train stations: {train.n}, held-out stations: {len(test_idx)}")

    # fit with the adaptive mixed-precision likelihood
    result = fit_mle(train, accuracy=1e-9, tile_size=50, max_evals=250, xtol=1e-7)
    print(f"θ_true = {full.theta_true}")
    print(f"θ̂      = {tuple(round(v, 4) for v in result.theta_hat)}  "
          f"(loglik {result.loglik:.2f}, {result.n_evals} evals)")

    # kriging prediction at the held-out stations
    config = MPConfig(accuracy=1e-9, tile_size=50)
    pred = krige(train, test_locs, result.theta_hat, config=config)
    rmse = float(np.sqrt(np.mean((pred.mean - test_z) ** 2)))
    sd = np.maximum(pred.stddev, 1e-12)
    inside = np.abs(test_z - pred.mean) <= 1.96 * sd
    print(f"\nkriging RMSE          : {rmse:.4f}")
    print(f"field stddev (prior)  : {np.sqrt(result.theta_hat[0]):.4f}")
    print(f"95% interval coverage : {float(np.mean(inside)) * 100:.1f}%")
    print("\nExpected: RMSE well below the prior stddev, coverage near 95%.")


if __name__ == "__main__":
    main()
