#!/usr/bin/env python3
"""Explore how the required accuracy shapes the precision maps.

Sweeps ``u_req`` for one application and prints, per level: the kernel
precision tile fractions (Fig. 7), the share of communications that
qualify for sender-side conversion (Fig. 4), and the resulting
mixed-precision storage footprint vs full FP64.

Run:  python examples/precision_map_explorer.py  [app] [n]
      app ∈ {2d-sqexp, 2d-matern, 3d-sqexp}, default 2d-matern
"""

import sys

import numpy as np

from repro.bench import get_app
from repro.core import build_comm_precision_map, build_precision_map
from repro.geostats.locations import generate_locations
from repro.precision import FORMAT_INFO, Precision, get_storage_precision
from repro.tiles.norms import sampled_tile_norms


def main() -> None:
    app_key = sys.argv[1] if len(sys.argv) > 1 else "2d-matern"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 65536
    nb = 2048
    app = get_app(app_key)
    nt = -(-n // nb)
    print(f"{app.label}: n={n}, tile {nb} (NT={nt}), θ={app.theta}\n")

    fp64_bytes = (nt * (nt + 1) // 2) * nb * nb * 8

    # sample the tile norms once; each accuracy level reuses them
    locs = generate_locations(n, app.model.dim, seed=0)
    norms = sampled_tile_norms(
        n, nb, app.model.entry_oracle(locs, app.theta),
        samples_per_tile=32, rng=np.random.default_rng(1),
    )

    for u_req in (1e-1, 1e-2, 1e-4, 1e-6, 1e-8, 1e-10):
        kmap = build_precision_map(norms, u_req)
        cmap = build_comm_precision_map(kmap)

        fr = kmap.tile_fractions()
        frac_str = " ".join(
            f"{p.name}:{fr.get(p, 0.0) * 100:4.1f}%"
            for p in (Precision.FP64, Precision.FP32, Precision.FP16_32, Precision.FP16)
        )
        storage = 0
        for i in range(nt):
            for j in range(i + 1):
                prec = get_storage_precision(kmap.kernel(i, j))
                storage += nb * nb * FORMAT_INFO[prec].storage_bytes
        print(
            f"u_req={u_req:7.0e} | {frac_str} | STC {cmap.stc_fraction() * 100:5.1f}% "
            f"| storage {storage / fp64_bytes * 100:5.1f}% of FP64"
        )

    print("\nTighter accuracy → more FP64/FP32 tiles, fewer STC chances, "
          "bigger footprint.")


if __name__ == "__main__":
    main()
